"""Tests for the sharded multi-tenant serving cluster (:mod:`repro.cluster`).

The load-bearing properties:

* cluster decisions equal a single :class:`ServingService` over the union
  matrix cell-for-cell (sharding partitions rows; the serving rule is
  row-local), across mixed-tenant batches, rebalancing, and recovery;
* rendezvous routing is stable under shard addition -- a key either keeps
  its shard or moves to the new one (hypothesis-verified);
* a DOWN shard degrades to default plans without errors or regressions;
* background refresh scheduling is budgeted, round-robin, skips DOWN
  shards, and never runs ALS on the serve path.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterShard,
    HealthBoard,
    RefreshScheduler,
    RendezvousRouter,
    ServingCluster,
    aggregate_shard_stats,
    degraded_decisions,
    parallel_throughput_qps,
    routing_key,
    split_batch,
)
from repro.config import ALSConfig
from repro.core.plan_cache import PlanCache
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ClusterError, MatrixError
from repro.experiments.cluster import cluster_vs_single_comparison, populate_cluster
from repro.serving import LatencyRecorder, ServingService, ServingStats


def make_union_matrix(n=40, k=8, seed=3, censored=True):
    """A partially observed matrix with the default column always known."""
    rng = np.random.default_rng(seed)
    truth = rng.uniform(0.5, 20.0, size=(n, k))
    matrix = WorkloadMatrix(n, k)
    observed = rng.random((n, k)) < 0.35
    observed[:, 0] = True
    rows, cols = np.nonzero(observed)
    matrix.observe_batch(rows, cols, truth[rows, cols])
    if censored:
        for q, h in [(1, 3), (5, 2), (7, 4)]:
            if q < n and h < k and not matrix.is_observed(q, h):
                matrix.observe_censored(q, h, float(truth[q, h]) / 2.0)
    return matrix


def make_cluster(matrix, n_shards=3, tenant="acme", **kwargs):
    cluster = ServingCluster(
        n_shards=n_shards,
        n_hints=matrix.n_hints,
        als_config=ALSConfig(rank=2, iterations=3, seed=0),
        **kwargs,
    )
    populate_cluster(cluster, tenant, matrix)
    return cluster


# -- routing ---------------------------------------------------------------------


class TestRouter:
    def test_routing_is_deterministic_across_instances(self):
        keys = [f"t/q{i}" for i in range(50)]
        a = RendezvousRouter([0, 1, 2])
        b = RendezvousRouter([0, 1, 2])
        assert a.assign(keys).tolist() == b.assign(keys).tolist()

    def test_every_shard_gets_keys_eventually(self):
        router = RendezvousRouter([0, 1, 2, 3])
        assigned = router.assign([f"t/q{i}" for i in range(400)])
        assert set(assigned.tolist()) == {0, 1, 2, 3}

    def test_tenant_namespaces_are_disjoint(self):
        # The same query name in different tenants is a different key and
        # may legitimately land on a different shard.
        assert routing_key("a", "q1") != routing_key("b", "q1")
        with pytest.raises(ClusterError):
            routing_key("", "q1")
        with pytest.raises(ClusterError):
            routing_key("a/b", "q1")

    def test_topology_errors(self):
        router = RendezvousRouter([0])
        with pytest.raises(ClusterError):
            router.add_shard(0)
        with pytest.raises(ClusterError):
            router.remove_shard(9)
        with pytest.raises(ClusterError):
            RendezvousRouter().shard_for("t/q")

    @settings(max_examples=40, deadline=None)
    @given(
        n_keys=st.integers(min_value=1, max_value=60),
        n_shards=st.integers(min_value=1, max_value=6),
        salt=st.integers(min_value=0, max_value=1000),
    )
    def test_only_rebalanced_keys_move_on_shard_addition(
        self, n_keys, n_shards, salt
    ):
        keys = [f"t{salt}/q{i}" for i in range(n_keys)]
        router = RendezvousRouter(range(n_shards))
        before = router.assign(keys)
        predicted_moves = set(router.moves_for_new_shard(keys, n_shards))
        router.add_shard(n_shards)
        after = router.assign(keys)
        for key, old, new in zip(keys, before, after):
            if key in predicted_moves:
                assert new == n_shards
            else:
                # Stability: a key never shuffles between the old shards.
                assert new == old

    def test_split_batch_groups_and_regathers(self):
        shard_ids = np.array([2, 0, 2, 1, 0, 2])
        groups = split_batch(shard_ids)
        assert {sid for sid, _ in groups} == {0, 1, 2}
        seen = np.concatenate([g for _, g in groups])
        assert sorted(seen.tolist()) == list(range(6))
        for sid, positions in groups:
            assert (shard_ids[positions] == sid).all()

    def test_split_batch_rejects_2d(self):
        with pytest.raises(ClusterError):
            split_batch(np.zeros((2, 2), dtype=np.int64))


# -- shard lifecycle ----------------------------------------------------------------


class TestClusterShard:
    def test_rows_roundtrip_between_shards(self):
        union = make_union_matrix()
        a = ClusterShard(0, union.n_hints)
        keys = [f"t/q{i}" for i in range(union.n_queries)]
        a.import_rows({**union.export_rows(range(union.n_queries)),
                       "query_names": keys})
        moved = keys[5:15]
        payload = a.export_rows(moved)
        a.remove_rows(moved)
        b = ClusterShard(1, union.n_hints)
        b.import_rows(payload)
        assert a.n_rows == union.n_queries - 10
        assert b.n_rows == 10
        # The moved rows carry their full observation state.
        for offset, key in enumerate(moved):
            q = 5 + offset
            np.testing.assert_array_equal(
                b.matrix.values[b.local_row(key)], union.values[q]
            )
            np.testing.assert_array_equal(
                b.matrix.censored_mask[b.local_row(key)], union.censored_mask[q]
            )
        # Remaining rows on the source re-indexed consistently.
        for key in a.keys:
            assert a.matrix.query_names[a.local_row(key)] == key

    def test_serve_local_matches_plan_cache(self):
        union = make_union_matrix()
        shard = ClusterShard(0, union.n_hints)
        shard.import_rows({**union.export_rows(range(union.n_queries)),
                           "query_names": [f"t/q{i}" for i in range(union.n_queries)]})
        scalar = PlanCache(union)
        decisions = shard.serve_local(np.arange(union.n_queries))
        assert decisions.hints.tolist() == [
            scalar.lookup(q).hint for q in range(union.n_queries)
        ]

    def test_empty_shard_behaviour(self):
        shard = ClusterShard(0, 4)
        assert shard.n_rows == 0
        assert not shard.is_dirty
        assert shard.stats().decisions == 0
        with pytest.raises(ClusterError):
            shard.serve_local(np.array([0]))
        with pytest.raises(ClusterError):
            shard.export_rows(["t/q0"])

    def test_remove_all_rows_retires_the_stack(self):
        shard = ClusterShard(0, 4)
        shard.add_rows(["t/q0", "t/q1"])
        assert shard.matrix is not None
        shard.remove_rows(["t/q0", "t/q1"])
        assert shard.matrix is None and shard.service is None
        assert shard.n_rows == 0
        # The shard is reusable afterwards.
        shard.add_rows(["t/q2"])
        assert shard.n_rows == 1

    def test_telemetry_survives_full_row_retirement(self):
        shard = ClusterShard(0, 4)
        shard.add_rows(["t/q0"])
        shard.observe_local([0], [0], [1.0])
        shard.serve_local(np.array([0, 0]))
        assert shard.stats().decisions == 2
        shard.remove_rows(["t/q0"])
        # Counters are monotonic: retiring the rows keeps the history.
        assert shard.stats().decisions == 2
        shard.add_rows(["t/q9"])
        shard.observe_local([0], [0], [2.0])
        shard.serve_local(np.array([0]))
        assert shard.stats().decisions == 3

    def test_cluster_decisions_monotonic_across_rebalance(self):
        cluster = ServingCluster(n_shards=1, n_hints=4)
        cluster.add_tenant("t", ["only"])
        cluster.observe_batch("t", [0], [0], [1.0])
        cluster.serve_all("t")
        assert cluster.stats().cluster.decisions == 1
        # Keep adding shards until the single row migrates off shard 0.
        for _ in range(20):
            cluster.add_shard()
            if cluster.stats().rebalanced_rows:
                break
        assert cluster.stats().rebalanced_rows >= 1
        assert cluster.stats().cluster.decisions == 1

    def test_duplicate_key_rejected(self):
        shard = ClusterShard(0, 4)
        shard.add_rows(["t/q0"])
        with pytest.raises(ClusterError):
            shard.add_rows(["t/q0"])


# -- matrix row migration primitives ---------------------------------------------------


class TestMatrixRowMigration:
    def test_export_import_preserves_everything(self):
        union = make_union_matrix()
        payload = union.export_rows([3, 1, 7])
        other = WorkloadMatrix(1, union.n_hints)
        indices = other.import_rows(payload)
        assert indices == [1, 2, 3]
        for dst, src in zip(indices, [3, 1, 7]):
            np.testing.assert_array_equal(other.values[dst], union.values[src])
            np.testing.assert_array_equal(
                other.timeout_matrix[dst], union.timeout_matrix[src]
            )
            assert other.query_names[dst] == union.query_names[src]

    def test_remove_queries_shifts_and_bumps_version(self):
        union = make_union_matrix(n=6)
        names = list(union.query_names)
        version = union.version
        union.remove_queries([1, 4])
        assert union.n_queries == 4
        assert union.query_names == [names[i] for i in [0, 2, 3, 5]]
        assert union.version == version + 1

    def test_validation_errors(self):
        union = make_union_matrix(n=4, k=3)
        with pytest.raises(MatrixError):
            union.remove_queries([0, 1, 2, 3])
        with pytest.raises(MatrixError):
            union.export_rows([99])
        bad = union.export_rows([0])
        bad["values"] = bad["values"][:, :2]
        with pytest.raises(MatrixError):
            WorkloadMatrix(2, 3).import_rows(bad)

    def test_import_empty_payload_is_noop(self):
        union = make_union_matrix(n=4)
        version = union.version
        assert union.import_rows(union.export_rows([])) == []
        assert union.version == version


# -- cluster equivalence -----------------------------------------------------------------


class TestClusterEquivalence:
    def test_decisions_match_single_service_cell_for_cell(self):
        union = make_union_matrix()
        cluster = make_cluster(union, n_shards=3)
        single = ServingService(union.copy())
        rng = np.random.default_rng(0)
        arrivals = rng.integers(0, union.n_queries, 200)
        mine = cluster.serve_batch("acme", arrivals)
        theirs = single.serve_batch(arrivals)
        np.testing.assert_array_equal(mine.hints, theirs.hints)
        np.testing.assert_array_equal(mine.used_default, theirs.used_default)
        np.testing.assert_array_equal(
            mine.expected_latency, theirs.expected_latency
        )

    def test_export_tenant_matrix_roundtrips_union(self):
        union = make_union_matrix()
        cluster = make_cluster(union, n_shards=4)
        exported = cluster.export_tenant_matrix("acme")
        np.testing.assert_array_equal(exported.values, union.values)
        np.testing.assert_array_equal(exported.mask, union.mask)
        np.testing.assert_array_equal(exported.censored_mask, union.censored_mask)
        np.testing.assert_array_equal(
            exported.timeout_matrix, union.timeout_matrix
        )

    def test_mixed_tenant_batch_fans_out_and_regathers(self):
        union_a = make_union_matrix(seed=3)
        union_b = make_union_matrix(seed=9)
        cluster = ServingCluster(n_shards=3, n_hints=union_a.n_hints)
        populate_cluster(cluster, "a", union_a)
        populate_cluster(cluster, "b", union_b)
        single_a = ServingService(union_a.copy())
        single_b = ServingService(union_b.copy())
        rng = np.random.default_rng(4)
        arrivals = [
            ("a" if rng.random() < 0.5 else "b", int(rng.integers(0, 40)))
            for _ in range(120)
        ]
        routed = cluster.stats().routed_batches
        decisions = cluster.serve_mixed(arrivals)
        assert cluster.stats().routed_batches == routed + 1
        for i, (tenant, q) in enumerate(arrivals):
            single = single_a if tenant == "a" else single_b
            expected = single.serve_batch([q])
            assert decisions.hints[i] == expected.hints[0]
            assert decisions.queries[i] == q
            assert decisions.used_default[i] == expected.used_default[0]

    def test_observe_batch_is_atomic_across_shards(self):
        union = make_union_matrix()
        cluster = make_cluster(union, n_shards=3)
        before = cluster.export_tenant_matrix("acme")
        queries = np.arange(union.n_queries)  # spans every shard
        hints = np.ones(union.n_queries, dtype=np.int64)
        hints[-1] = union.n_hints + 5  # invalid element in a late group
        with pytest.raises(ClusterError):
            cluster.observe_batch(
                "acme", queries, hints, np.full(union.n_queries, 0.1)
            )
        with pytest.raises(ClusterError):
            cluster.observe_batch(
                "acme",
                queries,
                np.ones(union.n_queries, dtype=np.int64),
                np.full(union.n_queries, -1.0),
            )
        # No shard was mutated by either rejected batch.
        after = cluster.export_tenant_matrix("acme")
        np.testing.assert_array_equal(before.values, after.values)
        np.testing.assert_array_equal(before.mask, after.mask)

    def test_feedback_routes_to_the_owning_shard(self):
        union = make_union_matrix()
        cluster = make_cluster(union, n_shards=3)
        single = ServingService(union.copy())
        rng = np.random.default_rng(1)
        queries = rng.integers(0, union.n_queries, 30)
        hints = rng.integers(0, union.n_hints, 30)
        latencies = rng.uniform(0.01, 0.5, 30)
        cluster.observe_batch("acme", queries, hints, latencies)
        single.observe_batch(queries, hints, latencies)
        mine = cluster.serve_all("acme")
        theirs = single.serve_all()
        np.testing.assert_array_equal(mine.hints, theirs.hints)
        np.testing.assert_array_equal(
            mine.expected_latency, theirs.expected_latency
        )

    def test_unknown_tenant_and_bad_indices(self):
        union = make_union_matrix()
        cluster = make_cluster(union)
        with pytest.raises(ClusterError):
            cluster.serve_batch("nobody", [0])
        with pytest.raises(ClusterError):
            cluster.serve_batch("acme", [999])
        with pytest.raises(ClusterError):
            cluster.add_tenant("acme", ["x"])
        with pytest.raises(ClusterError):
            cluster.add_queries("acme", ["q0"])  # duplicate name

    def test_add_queries_after_registration(self):
        union = make_union_matrix()
        cluster = make_cluster(union)
        new = cluster.add_queries("acme", ["extra0", "extra1"])
        assert new == [union.n_queries, union.n_queries + 1]
        decisions = cluster.serve_batch("acme", new)
        # Nothing observed for the new rows: default plans, unknown latency.
        assert decisions.used_default.all()
        assert np.isinf(decisions.expected_latency).all()


# -- rebalancing ------------------------------------------------------------------------


class TestRebalancing:
    def test_add_shard_moves_only_rerouted_rows(self):
        union = make_union_matrix(n=60)
        cluster = make_cluster(union, n_shards=3)
        directory = cluster._tenants["acme"]
        before = directory.shard_of.copy()
        new_id = cluster.add_shard()
        after = directory.shard_of
        moved = before != after
        assert (after[moved] == new_id).all()
        assert cluster.stats().rebalanced_rows == int(moved.sum())
        total_rows = sum(s.n_rows for s in cluster.shards.values())
        assert total_rows == union.n_queries

    def test_decisions_identical_after_rebalance(self):
        union = make_union_matrix(n=60)
        cluster = make_cluster(union, n_shards=2)
        before = cluster.serve_all("acme")
        cluster.add_shard()
        cluster.add_shard()
        after = cluster.serve_all("acme")
        np.testing.assert_array_equal(before.hints, after.hints)
        np.testing.assert_array_equal(
            before.expected_latency, after.expected_latency
        )
        exported = cluster.export_tenant_matrix("acme")
        np.testing.assert_array_equal(exported.values, union.values)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=25),
        n_shards=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_rebalance_property_random_matrices(self, n, n_shards, seed):
        union = make_union_matrix(n=n, k=5, seed=seed, censored=False)
        cluster = ServingCluster(n_shards=n_shards, n_hints=5)
        populate_cluster(cluster, "t", union)
        directory = cluster._tenants["t"]
        before_assign = directory.shard_of.copy()
        before = cluster.serve_all("t")
        new_id = cluster.add_shard()
        after = cluster.serve_all("t")
        moved = before_assign != directory.shard_of
        assert (directory.shard_of[moved] == new_id).all()
        np.testing.assert_array_equal(before.hints, after.hints)


# -- failover --------------------------------------------------------------------------


class TestFailover:
    def test_down_shard_serves_default_plans(self):
        union = make_union_matrix(n=60)
        cluster = make_cluster(union, n_shards=3)
        healthy = cluster.serve_all("acme")
        victim = cluster.shard_ids[1]
        cluster.mark_down(victim)
        degraded = cluster.serve_all("acme")
        on_down = cluster._tenants["acme"].shard_of == victim
        assert on_down.any()
        assert degraded.used_default[on_down].all()
        assert (degraded.hints[on_down] == cluster.default_hint).all()
        assert np.isinf(degraded.expected_latency[on_down]).all()
        # Healthy shards are untouched by the outage.
        np.testing.assert_array_equal(
            degraded.hints[~on_down], healthy.hints[~on_down]
        )
        assert cluster.stats().degraded_decisions == int(on_down.sum())

    def test_recovery_restores_identical_decisions(self):
        union = make_union_matrix(n=60)
        cluster = make_cluster(union, n_shards=3)
        healthy = cluster.serve_all("acme")
        victim = cluster.shard_ids[0]
        cluster.mark_down(victim)
        cluster.serve_all("acme")
        cluster.mark_up(victim)
        recovered = cluster.serve_all("acme")
        np.testing.assert_array_equal(healthy.hints, recovered.hints)

    def test_breaker_trips_after_threshold(self):
        board = HealthBoard(failure_threshold=2)
        board.register(0)
        assert not board.record_failure(0)
        assert board.is_up(0)
        assert board.record_failure(0)
        assert not board.is_up(0)
        board.mark_up(0)
        assert board.is_up(0)
        board.record_failure(0)
        board.record_success(0)  # success resets the streak
        assert not board.record_failure(0)

    def test_shard_exception_degrades_not_raises(self):
        union = make_union_matrix(n=30)
        cluster = make_cluster(union, n_shards=2, failure_threshold=1)
        victim = cluster.shard_ids[0]
        # Sabotage one shard so serve_local raises.
        cluster.shards[victim].service = None
        decisions = cluster.serve_all("acme")  # must not raise
        on_down = cluster._tenants["acme"].shard_of == victim
        assert decisions.used_default[on_down].all()
        # threshold=1: the breaker tripped the shard DOWN.
        assert not cluster.health.is_up(victim)

    def test_degraded_decisions_helper(self):
        decisions = degraded_decisions(np.array([3, 1]), default_hint=2)
        assert decisions.hints.tolist() == [2, 2]
        assert decisions.used_default.all()
        assert np.isinf(decisions.expected_latency).all()

    def test_health_board_validation(self):
        board = HealthBoard()
        with pytest.raises(ClusterError):
            board.is_up(0)
        board.register(0)
        with pytest.raises(ClusterError):
            board.register(0)
        with pytest.raises(ClusterError):
            HealthBoard(failure_threshold=0)


# -- background refresh scheduling ----------------------------------------------------


class TestRefreshScheduler:
    def test_serve_and_observe_never_run_als(self):
        union = make_union_matrix(n=30)
        cluster = make_cluster(union, n_shards=2)
        cluster.serve_all("acme")
        cluster.observe_batch("acme", [0, 1], [1, 2], [0.5, 0.25])
        for shard in cluster.shards.values():
            assert shard.refresher.cold_solves == 0
            assert shard.refresher.warm_refreshes == 0

    def test_tick_budget_round_robin(self):
        union = make_union_matrix(n=40)
        cluster = make_cluster(union, n_shards=4, refresh_budget=1)
        dirty = cluster.scheduler.dirty_shards()
        assert len(dirty) == 4  # populated => every shard dirty
        first = cluster.tick()
        second = cluster.tick()
        assert len(first) == 1 and len(second) == 1
        assert first != second  # the cursor advanced
        remaining = cluster.drain_refreshes()
        assert remaining == 2
        assert cluster.scheduler.dirty_shards() == []
        assert cluster.tick() == []  # clean cluster: a no-op tick

    def test_scheduler_skips_down_shards(self):
        union = make_union_matrix(n=40)
        cluster = make_cluster(union, n_shards=2, refresh_budget=4)
        victim = cluster.shard_ids[0]
        cluster.mark_down(victim)
        refreshed = cluster.tick()
        assert victim not in refreshed
        assert cluster.scheduler.skipped_down >= 1
        assert victim in cluster.scheduler.dirty_shards()
        cluster.mark_up(victim)
        assert victim in cluster.tick()

    def test_refresh_updates_completion_for_serving(self):
        union = make_union_matrix(n=25)
        cluster = make_cluster(union, n_shards=2)
        cluster.drain_refreshes()
        for shard in cluster.shards.values():
            assert shard.refresher.cold_solves == 1
            assert not shard.is_dirty
            completed = shard.service.completed_matrix()
            assert completed.shape == shard.matrix.shape
        # New feedback dirties only the owning shard.
        cluster.observe_batch("acme", [0], [1], [0.1])
        dirty = cluster.scheduler.dirty_shards()
        assert len(dirty) == 1
        assert cluster.drain_refreshes() == 1
        assert cluster.shards[dirty[0]].refresher.warm_refreshes == 1

    def test_scheduler_validation(self):
        with pytest.raises(ClusterError):
            RefreshScheduler(budget_per_tick=0)
        scheduler = RefreshScheduler()
        shard = ClusterShard(0, 4)
        scheduler.register(shard)
        with pytest.raises(ClusterError):
            scheduler.register(shard)
        assert scheduler.tick() == []  # empty shard is never dirty


# -- stats ------------------------------------------------------------------------------


class TestStats:
    def test_as_dict_keeps_counters_integral(self):
        recorder = LatencyRecorder()
        recorder.record(4, 0.5, 1)
        recorder.record_refresh()
        payload = recorder.report().as_dict()
        assert payload["decisions"] == 4 and isinstance(payload["decisions"], int)
        assert payload["batches"] == 1 and isinstance(payload["batches"], int)
        assert payload["refreshes"] == 1 and isinstance(payload["refreshes"], int)
        assert isinstance(payload["throughput_qps"], float)

    def test_merge_counters_exact(self):
        a = LatencyRecorder()
        a.record(10, 1.0, 5)
        a.record_refresh()
        b = LatencyRecorder()
        b.record(30, 1.0, 6)
        merged = ServingStats.merge([a.report(), b.report()])
        assert merged.decisions == 40
        assert merged.batches == 2
        assert merged.refreshes == 1
        assert merged.wall_seconds == pytest.approx(2.0)
        assert merged.throughput_qps == pytest.approx(20.0)
        assert merged.non_default_fraction == pytest.approx(11 / 40)

    def test_merge_of_empty_parts(self):
        empty = LatencyRecorder().report()
        merged = ServingStats.merge([empty, empty])
        assert merged.decisions == 0
        assert merged.throughput_qps == 0.0
        assert ServingStats.merge([]).decisions == 0

    def test_merged_recorders_give_exact_percentiles(self):
        rng = np.random.default_rng(2)
        recorders, all_sizes, all_seconds = [], [], []
        for _ in range(3):
            recorder = LatencyRecorder()
            sizes = rng.integers(1, 20, 8)
            seconds = rng.random(8) * 1e-3
            for size, sec in zip(sizes, seconds):
                recorder.record(int(size), float(sec), 0)
            recorders.append(recorder)
            all_sizes.extend(sizes.tolist())
            all_seconds.extend(seconds.tolist())
        pooled = LatencyRecorder.merged(recorders).report()
        expanded = np.repeat(
            np.asarray(all_seconds) / np.asarray(all_sizes), all_sizes
        )
        assert pooled.p50_latency_s == pytest.approx(
            np.percentile(expanded, 50.0)
        )
        assert pooled.p99_latency_s == pytest.approx(
            np.percentile(expanded, 99.0)
        )

    def test_cluster_stats_aggregation(self):
        union = make_union_matrix(n=40)
        cluster = make_cluster(union, n_shards=3)
        cluster.serve_all("acme")
        cluster.serve_batch("acme", [0, 1, 2, 3])
        stats = cluster.stats()
        assert stats.n_shards == 3
        assert stats.n_tenants == 1
        assert stats.total_rows == union.n_queries
        assert stats.cluster.decisions == sum(
            s.decisions for s in stats.per_shard.values()
        )
        assert stats.routed_batches == 2
        assert stats.fan_out >= 1.0
        payload = stats.as_dict()
        assert payload["cluster"]["decisions"] == stats.cluster.decisions
        assert str(stats).startswith("ClusterStats(")

    def test_aggregate_uses_exact_pooled_percentiles(self):
        union = make_union_matrix(n=40)
        cluster = make_cluster(union, n_shards=2)
        cluster.serve_all("acme")
        exact = LatencyRecorder.merged(
            [s.recorder() for s in cluster.shards.values()]
        ).report()
        aggregated = aggregate_shard_stats(cluster.shards.values())
        assert aggregated.p50_latency_s == exact.p50_latency_s
        assert aggregated.p99_latency_s == exact.p99_latency_s

    def test_parallel_throughput_model(self):
        fast = dataclasses.replace(
            LatencyRecorder().report(), decisions=100, wall_seconds=1.0
        )
        slow = dataclasses.replace(
            LatencyRecorder().report(), decisions=100, wall_seconds=2.0
        )
        qps = parallel_throughput_qps({0: fast, 1: slow})
        assert qps == pytest.approx(200 / 2.0)
        assert parallel_throughput_qps({}) == 0.0


# -- the experiment driver --------------------------------------------------------------


class TestClusterExperiment:
    def test_comparison_on_tiny_workload(self, tiny_workload):
        result = cluster_vs_single_comparison(
            tiny_workload,
            n_shards=2,
            batch_size=64,
            n_batches=4,
            seed=0,
            timing_reps=1,
        )
        assert result["identical"] == 1.0
        assert result["degraded_ok"] == 1.0
        assert result["recovered"] == 1.0
        assert result["rebalance_ok"] == 1.0
        assert result["decisions"] == 256.0
        assert result["parallel_qps"] > 0

    def test_populate_cluster_with_censoring(self):
        union = make_union_matrix(censored=True)
        cluster = ServingCluster(n_shards=2, n_hints=union.n_hints)
        populate_cluster(cluster, "t", union)
        exported = cluster.export_tenant_matrix("t")
        np.testing.assert_array_equal(
            exported.censored_mask, union.censored_mask
        )
        np.testing.assert_array_equal(
            exported.timeout_matrix, union.timeout_matrix
        )
