"""Tests for configuration validation, the error hierarchy, and logging."""

import logging

import pytest

from repro import errors
from repro.config import ALSConfig, ExplorationConfig, SimulationConfig, TCNNConfig
from repro.errors import ConfigError, ReproError
from repro.logging_util import configure_logging, get_logger


def test_every_error_derives_from_repro_error():
    error_classes = [
        getattr(errors, name)
        for name in dir(errors)
        if isinstance(getattr(errors, name), type)
        and issubclass(getattr(errors, name), Exception)
    ]
    for cls in error_classes:
        assert issubclass(cls, ReproError)


def test_als_config_defaults_and_validation():
    config = ALSConfig()
    assert config.rank == 5
    assert config.regularization == pytest.approx(0.2)
    assert config.censored
    for kwargs in ({"rank": 0}, {"regularization": -1.0}, {"iterations": 0}):
        with pytest.raises(ConfigError):
            ALSConfig(**kwargs)


def test_exploration_config_validation():
    config = ExplorationConfig()
    assert config.batch_size >= 1
    for kwargs in ({"batch_size": 0}, {"timeout_alpha": 0.0}, {"max_steps": 0}):
        with pytest.raises(ConfigError):
            ExplorationConfig(**kwargs)


def test_tcnn_config_defaults_match_paper():
    config = TCNNConfig()
    assert config.embedding_rank == 5
    assert config.dropout == pytest.approx(0.3)
    assert config.batch_size == 32
    assert config.max_epochs == 100
    assert config.convergence_window == 10
    assert config.convergence_threshold == pytest.approx(0.01)
    for kwargs in (
        {"embedding_rank": 0},
        {"dropout": 1.0},
        {"learning_rate": 0.0},
        {"batch_size": 0},
        {"max_epochs": 0},
    ):
        with pytest.raises(ConfigError):
            TCNNConfig(**kwargs)


def test_simulation_config_validation():
    SimulationConfig(checkpoint_times=(1.0, 2.0))
    with pytest.raises(ConfigError):
        SimulationConfig(total_exploration_time=0.0)
    with pytest.raises(ConfigError):
        SimulationConfig(checkpoint_times=(-1.0,))


def test_configs_are_frozen():
    config = ALSConfig()
    with pytest.raises(Exception):
        config.rank = 10


def test_get_logger_namespacing():
    assert get_logger("core.explorer").name == "repro.core.explorer"
    assert get_logger("repro.db").name == "repro.db"


def test_configure_logging_is_idempotent():
    logger = configure_logging(logging.DEBUG)
    handlers_before = len(logger.handlers)
    configure_logging(logging.DEBUG)
    assert len(logger.handlers) == handlers_before
    assert logger.level == logging.DEBUG
