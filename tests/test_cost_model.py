"""Tests for the cost model and latency model."""

import numpy as np
import pytest

from repro.db.catalog import Column, Table
from repro.db.cost_model import CostConstants, CostModel, LatencyModel, MachineProfile
from repro.db.datagen import make_catalog
from repro.db.hints import default_hint_set
from repro.db.operators import ScanOperator
from repro.db.optimizer import PlanEnumerator
from repro.db.query import QueryGenerator
from repro.errors import ExecutionError


@pytest.fixture(scope="module")
def catalog():
    return make_catalog("toy", seed=0)


@pytest.fixture(scope="module")
def cost_model(catalog):
    return CostModel(catalog)


def big_table():
    table = Table(name="big", row_count=1_000_000)
    table.add_column(Column(name="id", distinct_values=1_000_000, indexed=True))
    return table


def test_seq_scan_cost_grows_with_table_size(cost_model):
    small = Table(name="small", row_count=100)
    small.add_column(Column(name="id", distinct_values=100))
    cheap = cost_model.scan_cost("seq_scan", small, 100, 1.0)
    expensive = cost_model.scan_cost("seq_scan", big_table(), 1_000_000, 1.0)
    assert expensive > cheap


def test_index_scan_beats_seq_scan_for_selective_predicates(cost_model):
    table = big_table()
    selective_rows = 100
    index_cost = cost_model.scan_cost("index_scan", table, selective_rows, 1e-4)
    seq_cost = cost_model.scan_cost("seq_scan", table, selective_rows, 1e-4)
    assert index_cost < seq_cost


def test_seq_scan_beats_index_scan_for_full_scans(cost_model):
    table = big_table()
    index_cost = cost_model.scan_cost("index_scan", table, table.row_count, 1.0)
    seq_cost = cost_model.scan_cost("seq_scan", table, table.row_count, 1.0)
    assert seq_cost < index_cost


def test_unknown_scan_operator_raises(cost_model):
    with pytest.raises(ExecutionError):
        cost_model.scan_cost("bitmap_scan", big_table(), 10, 0.1)


def test_nested_loop_explodes_with_large_inputs(cost_model):
    small = cost_model.join_cost("nested_loop", 100, 100, 100)
    large = cost_model.join_cost("nested_loop", 1e6, 1e6, 1e6)
    hash_large = cost_model.join_cost("hash_join", 1e6, 1e6, 1e6)
    assert large > small
    assert large > hash_large * 10


def test_nested_loop_wins_for_tiny_outer(cost_model):
    nl = cost_model.join_cost("nested_loop", 1, 1000, 10)
    hj = cost_model.join_cost("hash_join", 1, 1000, 10)
    assert nl < hj


def test_unknown_join_operator_raises(cost_model):
    with pytest.raises(ExecutionError):
        cost_model.join_cost("sort_merge_bushy", 10, 10, 10)


def test_machine_profile_validation():
    with pytest.raises(ExecutionError):
        MachineProfile(seconds_per_cost_unit=0.0)
    with pytest.raises(ExecutionError):
        MachineProfile(noise_sigma=-0.1)


def test_latency_model_is_deterministic(catalog, cost_model):
    enumerator = PlanEnumerator(catalog)
    query = QueryGenerator(catalog, seed=4).generate("q0")
    plan = enumerator.optimize(query, default_hint_set())
    model = LatencyModel(cost_model, seed=0)
    assert model.latency_seconds(query, plan) == model.latency_seconds(query, plan)
    assert model.latency_seconds(query, plan, run_index=1) != pytest.approx(
        model.latency_seconds(query, plan, run_index=2)
    )


def test_latency_requires_annotated_plan(catalog, cost_model):
    from repro.db.operators import scan_node

    model = LatencyModel(cost_model, seed=0)
    query = QueryGenerator(catalog, seed=4).generate("q0")
    bare = scan_node(ScanOperator.SEQ_SCAN, query.aliases[0], query.table_for(query.aliases[0]))
    with pytest.raises(ExecutionError):
        model.latency_seconds(query, bare)


def test_median_latency_uses_multiple_runs(catalog, cost_model):
    enumerator = PlanEnumerator(catalog)
    query = QueryGenerator(catalog, seed=4).generate("q0")
    plan = enumerator.optimize(query, default_hint_set())
    model = LatencyModel(cost_model, seed=0)
    samples = [model.latency_seconds(query, plan, r) for r in range(5)]
    assert model.median_latency(query, plan, runs=5) == pytest.approx(np.median(samples))


def test_etl_query_dominated_by_write_cost(catalog, cost_model):
    enumerator = PlanEnumerator(catalog)
    generator = QueryGenerator(catalog, seed=4)
    query = generator.generate("q0")
    etl = type(query)(
        name="etl",
        relations=query.relations,
        joins=query.joins,
        predicates=query.predicates,
        is_etl=True,
    )
    plan = enumerator.optimize(query, default_hint_set())
    model = LatencyModel(cost_model, MachineProfile(noise_sigma=0.0), seed=0)
    assert model.latency_seconds(etl, plan) > model.latency_seconds(query, plan) + 50


def test_cost_constants_defaults_match_postgres():
    constants = CostConstants()
    assert constants.seq_page_cost == 1.0
    assert constants.random_page_cost == 4.0
    assert constants.cpu_tuple_cost == 0.01
