"""Tests for synthetic schema generation."""

import pytest

from repro.db.datagen import (
    DSB_TEMPLATE,
    IMDB_TEMPLATE,
    STACK_TEMPLATE,
    TOY_TEMPLATE,
    SchemaGenerator,
    SchemaTemplate,
    make_catalog,
)
from repro.errors import CatalogError


def test_make_catalog_known_templates():
    for name in ("toy", "imdb", "stack", "dsb"):
        catalog = make_catalog(name, seed=0)
        assert len(catalog.tables()) >= 2
        assert catalog.foreign_keys(), f"{name} should have foreign keys"


def test_make_catalog_unknown_template():
    with pytest.raises(CatalogError):
        make_catalog("oracle")


def test_catalog_is_reproducible():
    a = make_catalog("toy", seed=42)
    b = make_catalog("toy", seed=42)
    assert [t.row_count for t in a.tables()] == [t.row_count for t in b.tables()]
    assert a.joinable_pairs() == b.joinable_pairs()


def test_different_seeds_differ():
    a = make_catalog("toy", seed=1)
    b = make_catalog("toy", seed=2)
    assert [t.row_count for t in a.tables()] != [t.row_count for t in b.tables()]


def test_row_counts_respect_template_bounds():
    catalog = make_catalog("toy", seed=3)
    for table in catalog.tables():
        assert table.row_count >= TOY_TEMPLATE.min_rows


def test_table_count_matches_template():
    for template in (TOY_TEMPLATE, IMDB_TEMPLATE, STACK_TEMPLATE, DSB_TEMPLATE):
        catalog = SchemaGenerator(template, seed=0).generate()
        assert len(catalog.tables()) == template.num_tables


def test_join_graph_is_connected():
    catalog = make_catalog("toy", seed=0)
    names = set(catalog.table_names())
    seen = {next(iter(names))}
    frontier = list(seen)
    while frontier:
        current = frontier.pop()
        for neighbor in catalog.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert seen == names


def test_every_table_has_an_id_index():
    catalog = make_catalog("toy", seed=0)
    for table in catalog.tables():
        assert table.has_index("id")


def test_invalid_template_rejected():
    with pytest.raises(CatalogError):
        SchemaTemplate(name="bad", num_tables=1, min_rows=10, max_rows=100)
    with pytest.raises(CatalogError):
        SchemaTemplate(name="bad", num_tables=3, min_rows=100, max_rows=10)
