"""Tests for the end-to-end DB-substrate workload builder."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.generator import build_database_workload


def test_db_workload_shapes_and_positivity(db_workload):
    assert db_workload.true_latencies.shape == (
        db_workload.n_queries,
        db_workload.n_hints,
    )
    assert (db_workload.true_latencies > 0).all()
    assert np.isfinite(db_workload.true_latencies).all()


def test_db_workload_has_headroom(db_workload):
    assert db_workload.optimal_total <= db_workload.default_total
    assert db_workload.headroom >= 1.0


def test_db_workload_hint_diversity(db_workload):
    # At least some queries must have a non-default optimal hint, otherwise
    # the exploration problem would be trivial.
    best = db_workload.true_latencies.argmin(axis=1)
    assert (best != 0).any()


def test_db_workload_cost_matrix_shape(db_workload):
    costs = db_workload.optimizer_cost_matrix()
    assert costs.shape == db_workload.true_latencies.shape
    assert (costs > 0).all()


def test_db_workload_feature_store(db_workload):
    store = db_workload.feature_store()
    batch = store.batch([(0, 0), (1, 1)])
    assert batch.batch_size == 2


def test_db_workload_reproducible():
    a = build_database_workload("toy", n_queries=5, n_hints=4, seed=9, max_relations=3)
    b = build_database_workload("toy", n_queries=5, n_hints=4, seed=9, max_relations=3)
    assert np.allclose(a.true_latencies, b.true_latencies)


def test_db_workload_validation():
    with pytest.raises(WorkloadError):
        build_database_workload("toy", n_queries=0)
    with pytest.raises(WorkloadError):
        build_database_workload("toy", n_queries=3, n_hints=1)
