"""Static audit: no library module may touch global random state.

Every result in this repo -- exploration traces, scenario replays, the
ingress identity gate -- leans on bit-for-bit reproducibility, which one
stray ``np.random.shuffle`` (global NumPy state) or ``random.random()``
(global stdlib state) quietly breaks for every caller in the process.
The rule for ``src/repro``: randomness flows through explicitly seeded
generators (``np.random.default_rng`` / ``Generator`` /
``SeedSequence``) handed down from configs, never through module-global
state.

This is an AST audit, not a grep: it resolves the library's actual
``np.``/``numpy.`` aliases and catches ``from numpy import random`` /
``from random import ...`` spellings too, while ignoring comments and
docstrings.
"""

import ast
import pathlib

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

# Seeded-generator constructors: the only np.random attributes a library
# module may use.
ALLOWED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence", "BitGenerator"}


def _np_random_violations(tree):
    """Uses of ``np.random.<banned>`` / ``numpy.random.<banned>``."""
    numpy_aliases = {"numpy"}
    random_aliases = set()  # aliases bound to the numpy.random module itself
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    random_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in ALLOWED_NP_RANDOM:
                        yield node.lineno, f"from numpy.random import {alias.name}"

    for node in ast.walk(tree):
        if not (isinstance(node, ast.Attribute) and node.attr not in ALLOWED_NP_RANDOM):
            continue
        value = node.value
        # np.random.<attr> with np a numpy alias
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in numpy_aliases
        ):
            yield node.lineno, f"{value.value.id}.random.{node.attr}"
        # <alias>.<attr> with alias bound to numpy.random
        elif isinstance(value, ast.Name) and value.id in random_aliases:
            yield node.lineno, f"{value.id}.{node.attr}"


def _stdlib_random_violations(tree):
    """Any import of the stdlib ``random`` module (global Mersenne state)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node.lineno, f"import {alias.name}"
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            yield node.lineno, "from random import ..."


def test_source_tree_exists():
    assert SRC_ROOT.is_dir()
    assert list(SRC_ROOT.rglob("*.py")), "no library modules found to audit"


def test_no_global_random_state_in_library_modules():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, what in _np_random_violations(tree):
            offenders.append(f"{path.relative_to(SRC_ROOT.parent)}:{lineno}: {what}")
        for lineno, what in _stdlib_random_violations(tree):
            offenders.append(f"{path.relative_to(SRC_ROOT.parent)}:{lineno}: {what}")
    assert not offenders, (
        "library modules must use explicitly seeded generators "
        "(np.random.default_rng), never global random state:\n  "
        + "\n  ".join(offenders)
    )


def test_the_audit_itself_catches_violations():
    bad = ast.parse(
        "import numpy as np\n"
        "import random\n"
        "from numpy.random import rand\n"
        "x = np.random.shuffle([1])\n"
        "y = random.random()\n"
    )
    assert len(list(_np_random_violations(bad))) == 2
    assert len(list(_stdlib_random_violations(bad))) == 1
    good = ast.parse(
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n"
        "from numpy.random import Generator\n"
    )
    assert not list(_np_random_violations(good))
    assert not list(_stdlib_random_violations(good))
