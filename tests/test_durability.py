"""Tests for the durability layer (repro.durability) and its stack wiring.

Four layers, matching the module's design:

* :class:`WriteAheadLog` -- framing, CRC validation, LSN contiguity,
  torn-tail repair, segment rotation and truncation.  The load-bearing
  crash contract is a hypothesis sweep: truncating a healthy journal at
  *any* byte offset recovers a valid prefix state -- never a silently
  wrong state, never an unhandled exception;
* snapshots -- atomic install, corruption is a typed error, checkpoints
  bound the on-disk footprint without losing the adaptation backlog;
* recovery -- a recovered :class:`ServingService` reaches byte-identical
  decisions (JSON round-trips IEEE-754 doubles exactly);
* fault injection + cluster crash/rejoin -- deterministic crash points,
  degraded serving during an outage, queued feedback replayed on restart,
  and post-restart decisions identical to an uninterrupted cluster.
"""

import os
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.cluster import ClusterAdaptationController
from repro.cluster import ServingCluster
from repro.cluster.shard import ClusterShard
from repro.core.workload_matrix import WorkloadMatrix
from repro.durability import (
    FAULT_POINTS,
    FaultFS,
    FaultInjector,
    ShardJournal,
    WriteAheadLog,
    matrix_to_jsonable,
    recover_journal,
    recover_service,
    write_snapshot,
)
from repro.errors import (
    ClusterError,
    DurabilityError,
    InjectedCrash,
    WalCorruption,
)
from repro.serving import ServingService

SEGMENT_1 = "wal-00000000000000000001.log"


def make_matrix(n=8, k=4, seed=7):
    rng = np.random.default_rng(seed)
    truth = rng.uniform(0.5, 20.0, size=(n, k))
    matrix = WorkloadMatrix(n, k)
    observed = rng.random((n, k)) < 0.6
    observed[:, 0] = True
    rows, cols = np.nonzero(observed)
    matrix.observe_batch(rows, cols, truth[rows, cols])
    return matrix


def assert_identical_decisions(a, b):
    """Byte-identical: same plans, same flags, bit-equal expected latency."""
    assert np.array_equal(a.queries, b.queries)
    assert np.array_equal(a.hints, b.hints)
    assert np.array_equal(a.used_default, b.used_default)
    assert a.expected_latency.tobytes() == b.expected_latency.tobytes()


def assert_same_matrix(state, expected):
    """Compare a recovered matrix against a jsonable expected payload."""
    if expected is None:
        assert state is None
        return
    assert state is not None
    got = matrix_to_jsonable(state.to_dict())
    assert got == expected


# -- the write-ahead log ---------------------------------------------------------


class TestWriteAheadLog:
    def test_roundtrip_and_lsn_assignment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        assert wal.append("observe", {"q": [1], "h": [2], "v": [3.5]}) == 1
        assert wal.append("censor", {"q": 0, "h": 1, "lb": 9.25}) == 2
        wal.close()

        reopened = WriteAheadLog(str(tmp_path))
        records = reopened.open()
        assert [(r.lsn, r.kind) for r in records] == [(1, "observe"), (2, "censor")]
        assert records[0].data == {"q": [1], "h": [2], "v": [3.5]}
        assert records[1].data["lb"] == 9.25  # exact double round-trip
        assert reopened.next_lsn == 3

    def test_rejects_unknown_kind_and_bad_sync(self, tmp_path):
        with pytest.raises(DurabilityError):
            WriteAheadLog(str(tmp_path), sync="nope")
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        with pytest.raises(DurabilityError):
            wal.append("mystery", {})

    def test_torn_tail_is_repaired_not_an_error(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append("observe", {"q": [0], "h": [0], "v": [1.0]})
        wal.append("observe", {"q": [1], "h": [1], "v": [2.0]})
        wal.close()
        path = tmp_path / SEGMENT_1
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])  # crash mid-append

        reopened = WriteAheadLog(str(tmp_path))
        records = reopened.open(repair=True)
        assert [r.lsn for r in records] == [1]
        assert reopened.discarded_tail_records == 1
        assert reopened.next_lsn == 2
        # The tail was physically truncated, so appending resumes cleanly
        # on the same segment and a further reopen sees a healthy log.
        reopened.append("observe", {"q": [2], "h": [2], "v": [3.0]})
        reopened.close()
        final = WriteAheadLog(str(tmp_path))
        assert [r.lsn for r in final.open()] == [1, 2]

    def test_crc_corruption_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append("observe", {"q": [0], "h": [0], "v": [1.0]})
        wal.close()
        path = tmp_path / SEGMENT_1
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte, length intact
        path.write_bytes(bytes(blob))
        with pytest.raises(WalCorruption):
            WriteAheadLog(str(tmp_path)).open()

    def test_lsn_gap_within_a_segment_raises(self, tmp_path):
        from repro.durability import encode_record

        path = tmp_path / SEGMENT_1
        path.write_bytes(
            encode_record(1, "add_query", {"name": None})
            + encode_record(3, "add_query", {"name": None})  # 2 is missing
        )
        with pytest.raises(WalCorruption):
            WriteAheadLog(str(tmp_path)).open()

    def test_deleted_segment_is_a_history_gap(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix()
        ServingService(matrix, journal=journal)
        journal.wal.rotate()
        matrix.observe_batch([0], [1], [3.0])
        journal.crash()
        os.remove(tmp_path / SEGMENT_1)  # lose the import record
        with pytest.raises(WalCorruption):
            recover_journal(str(tmp_path))

    def test_reopen_of_an_empty_rotated_log_resumes_lsn(self, tmp_path):
        # A checkpoint leaves exactly one empty segment named for the next
        # LSN; a reopen before any append must resume there, not at 1.
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append("add_query", {"name": None})
        wal.append("add_query", {"name": None})
        wal.rotate()
        wal.truncate_through(2)
        wal.close()

        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.open() == []
        assert reopened.next_lsn == 3  # the segment name's promise
        assert reopened.append("add_query", {"name": None}) == 3
        reopened.close()
        final = WriteAheadLog(str(tmp_path))
        assert [r.lsn for r in final.open()] == [3]

    def test_truncate_through_unlinks_covered_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        for i in range(4):
            wal.append("observe", {"q": [i], "h": [0], "v": [1.0]})
        wal.rotate()
        before = wal.on_disk_bytes()
        reclaimed = wal.truncate_through(wal.next_lsn - 1)
        assert reclaimed > 0
        assert wal.on_disk_bytes() == before - reclaimed
        assert wal.segment_count == 1  # only the fresh live segment


# -- snapshots -------------------------------------------------------------------


class TestSnapshot:
    def test_checkpoint_truncates_and_recovery_prefers_snapshot(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix()
        service = ServingService(matrix, journal=journal)
        matrix.observe_batch([0, 1], [1, 2], [4.0, 5.0])
        bytes_before = journal.on_disk_bytes()
        covered = journal.checkpoint(matrix_to_jsonable(matrix.to_dict()))
        matrix.observe_batch([2], [1], [6.0])
        journal.crash()

        recovered, state = recover_journal(str(tmp_path))
        assert state.snapshot_lsn == covered
        assert state.skipped_records == 0  # truncation removed old segments
        assert state.replayed_records == 1  # only the post-checkpoint observe
        assert_same_matrix(state.matrix, matrix_to_jsonable(matrix.to_dict()))
        del service, bytes_before

    def test_crash_right_after_checkpoint_keeps_the_journal_usable(self, tmp_path):
        # checkpoint -> crash -> recover -> observe -> crash -> recover:
        # the first recovery sees zero surviving WAL records and must
        # resume LSNs past the snapshot, or the second one is bricked.
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix()
        ServingService(matrix, journal=journal)
        journal.checkpoint(matrix_to_jsonable(matrix.to_dict()))
        journal.crash()

        journal, state = recover_journal(str(tmp_path))
        assert state.next_lsn == state.snapshot_lsn + 1
        recovered = ServingService(state.matrix, journal=journal)
        recovered.observe_batch([0], [1], [4.5])
        expected = recovered.serve_all()
        journal.crash()

        final_service, final_state = recover_service(str(tmp_path))
        assert final_state.replayed_records == 1  # the post-checkpoint observe
        assert final_state.skipped_records == 0  # nothing silently dropped
        assert_identical_decisions(final_service.serve_all(), expected)

    def test_corrupt_snapshot_is_typed(self, tmp_path):
        write_snapshot(str(tmp_path), {"matrix": None, "backlog": []}, 0)
        snap = tmp_path / "snapshot.bin"
        snap.write_bytes(b"\x01\x02" + snap.read_bytes()[2:])
        with pytest.raises(WalCorruption):
            ShardJournal(str(tmp_path))

    def test_checkpoint_preserves_adaptation_backlog(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix()
        ServingService(matrix, journal=journal)
        journal.log_adapt_backlog([5, 2, 0])
        journal.checkpoint(matrix_to_jsonable(matrix.to_dict()))
        journal.crash()

        _, state = recover_journal(str(tmp_path))
        assert state.backlog.tolist() == [5, 2, 0]


# -- service-level recovery -------------------------------------------------------


class TestServiceRecovery:
    def test_recovered_service_is_byte_identical(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix()
        service = ServingService(matrix, journal=journal)
        service.observe_batch([0, 3], [1, 2], [2.5, 7.125])
        matrix.observe_censored(1, 3, 30.0)
        matrix.invalidate([4])
        expected = service.serve_all()
        journal.crash()

        recovered_service, state = recover_service(str(tmp_path))
        assert state.replayed_records == state.next_lsn - 1
        assert_identical_decisions(recovered_service.serve_all(), expected)

    def test_measured_records_are_audit_only(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix()
        service = ServingService(matrix, journal=journal)
        decisions = service.serve_all()
        service.record_measured(decisions, np.ones(decisions.batch_size))
        expected = service.serve_all()
        journal.crash()

        recovered_service, state = recover_service(str(tmp_path))
        assert state.measured_records == 1
        assert_identical_decisions(recovered_service.serve_all(), expected)

    def test_empty_directory_has_no_matrix(self, tmp_path):
        with pytest.raises(DurabilityError):
            recover_service(str(tmp_path))


# -- fault injection --------------------------------------------------------------


class TestFaultInjection:
    def test_arm_validates_inputs(self):
        injector = FaultInjector()
        with pytest.raises(DurabilityError):
            injector.arm("wal.append.sideways")
        with pytest.raises(DurabilityError):
            injector.arm("wal.append.before_write", at=0)
        assert "wal.append.torn_write" in FAULT_POINTS

    def test_fires_on_the_nth_pass(self, tmp_path):
        injector = FaultInjector()
        wal = WriteAheadLog(str(tmp_path), fs=FaultFS(injector))
        wal.open()
        plan = injector.arm("wal.append.before_write", at=3)
        wal.append("observe", {"q": [0], "h": [0], "v": [1.0]})
        wal.append("observe", {"q": [1], "h": [0], "v": [1.0]})
        with pytest.raises(InjectedCrash):
            wal.append("observe", {"q": [2], "h": [0], "v": [1.0]})
        assert plan.fired
        assert injector.fired == ["wal.append.before_write"]

    def test_torn_write_leaves_a_recoverable_prefix(self, tmp_path):
        injector = FaultInjector()
        wal = WriteAheadLog(str(tmp_path), fs=FaultFS(injector))
        wal.open()
        wal.append("observe", {"q": [0], "h": [0], "v": [1.0]})
        injector.arm("wal.append.torn_write", at=1, torn_fraction=0.4)
        with pytest.raises(InjectedCrash):
            wal.append("observe", {"q": [1], "h": [1], "v": [2.0]})
        wal.crash()

        reopened = WriteAheadLog(str(tmp_path))
        records = reopened.open()
        assert [r.lsn for r in records] == [1]
        assert reopened.discarded_tail_records == 1

    def test_fsync_points_require_sync_always(self, tmp_path):
        injector = FaultInjector()
        injector.arm("wal.append.before_fsync", at=1)
        wal = WriteAheadLog(str(tmp_path), fs=FaultFS(injector), sync="os")
        wal.open()
        wal.append("observe", {"q": [0], "h": [0], "v": [1.0]})  # no fsync
        wal.close()
        always = WriteAheadLog(str(tmp_path), fs=FaultFS(injector), sync="always")
        always.open()
        with pytest.raises(InjectedCrash):
            always.append("observe", {"q": [1], "h": [0], "v": [1.0]})


# -- cluster crash and rejoin ------------------------------------------------------


def feed(cluster, tenant, truth, rng, batches=3, size=10):
    """Decision-independent feedback: precomputed (row, hint, truth) cells."""
    n, k = truth.shape
    for _ in range(batches):
        rows = rng.integers(0, n, size=size)
        hints = rng.integers(0, k, size=size)
        cluster.observe_batch(tenant, rows, hints, truth[rows, hints])


class TestClusterCrashRejoin:
    def _populated(self, tmp_path, name, durable=True, fault_fs=None):
        cluster = ServingCluster(
            3,
            4,
            durability_dir=str(tmp_path / name) if durable else None,
            fault_fs=fault_fs,
        )
        rng = np.random.default_rng(3)
        truth = rng.uniform(0.5, 20.0, size=(18, 4))
        names = [f"q{i}" for i in range(18)]
        cluster.add_tenant("web", names)
        rows = np.arange(18)
        cluster.observe_batch("web", rows, np.zeros(18, dtype=np.int64), truth[:, 0])
        best = truth.argmin(axis=1)
        cluster.observe_batch("web", rows, best, truth[rows, best])
        return cluster, truth

    def test_kill_without_durability_raises(self, tmp_path):
        cluster, _ = self._populated(tmp_path, "plain", durable=False)
        with pytest.raises(ClusterError):
            cluster.kill_shard(0)

    def test_kill_restart_is_byte_identical(self, tmp_path):
        subject, truth = self._populated(tmp_path, "subject")
        reference, _ = self._populated(tmp_path, "reference")

        feed(subject, "web", truth, np.random.default_rng(11))
        feed(reference, "web", truth, np.random.default_rng(11))

        subject.kill_shard(0)
        during = subject.serve_all("web")
        assert during.batch_size == 18  # every arrival still answered
        degraded = np.isinf(during.expected_latency)
        assert degraded.any()  # the dead shard owned some rows
        assert during.used_default[degraded].all()  # degrade to default plan

        feed(subject, "web", truth, np.random.default_rng(13))
        feed(reference, "web", truth, np.random.default_rng(13))

        state = subject.restart_shard(0)
        assert state.replayed_records > 0
        stats = subject.stats()
        assert stats.crashes == 1 and stats.restarts == 1
        assert stats.queued_feedback > 0
        assert stats.replayed_feedback == stats.queued_feedback
        assert_identical_decisions(
            subject.serve_all("web"), reference.serve_all("web")
        )

    def test_injected_crash_mid_feedback_auto_kills_and_recovers(self, tmp_path):
        injector = FaultInjector()
        subject, truth = self._populated(
            tmp_path, "faulty", fault_fs=FaultFS(injector)
        )
        reference, _ = self._populated(tmp_path, "reference")
        feed(subject, "web", truth, np.random.default_rng(5))
        feed(reference, "web", truth, np.random.default_rng(5))

        injector.arm("wal.append.torn_write", at=1)
        feed(subject, "web", truth, np.random.default_rng(6))
        feed(reference, "web", truth, np.random.default_rng(6))
        assert subject.stats().crashes == 1
        crashed = [
            sid for sid, shard in subject.shards.items() if shard.crashed
        ]
        assert len(crashed) == 1

        subject.restart_shard(crashed[0])
        assert_identical_decisions(
            subject.serve_all("web"), reference.serve_all("web")
        )

    def test_injected_crash_during_restart_replay_requeues_tail(self, tmp_path):
        injector = FaultInjector()
        subject, truth = self._populated(
            tmp_path, "replay", fault_fs=FaultFS(injector)
        )
        reference, _ = self._populated(tmp_path, "reference")
        feed(subject, "web", truth, np.random.default_rng(5))
        feed(reference, "web", truth, np.random.default_rng(5))

        subject.kill_shard(0)
        feed(subject, "web", truth, np.random.default_rng(8))
        feed(reference, "web", truth, np.random.default_rng(8))
        assert subject.stats().queued_feedback > 0

        # Fire on the second replayed append: one entry applies, the
        # crash re-queues the rest and downs the shard with full
        # bookkeeping (health + crash counter), so serving keeps
        # degrading instead of raising.
        injector.arm("wal.append.before_write", at=2)
        subject.restart_shard(0)
        stats = subject.stats()
        assert subject.shards[0].crashed
        assert stats.crashes == 2 and stats.restarts == 1
        during = subject.serve_all("web")
        assert during.used_default[np.isinf(during.expected_latency)].all()

        # A further restart drains the re-queued tail; nothing was lost.
        subject.restart_shard(0)
        stats = subject.stats()
        assert stats.restarts == 2
        assert stats.replayed_feedback == stats.queued_feedback
        assert_identical_decisions(
            subject.serve_all("web"), reference.serve_all("web")
        )

    def test_checkpoint_then_operator_kill(self, tmp_path):
        subject, truth = self._populated(tmp_path, "ckpt")
        reference, _ = self._populated(tmp_path, "reference")
        feed(subject, "web", truth, np.random.default_rng(21))
        feed(reference, "web", truth, np.random.default_rng(21))

        completed = subject.checkpoint()
        assert completed == sorted(subject.shards)
        subject.kill_shard(1)
        state = subject.restart_shard(1)
        assert state.snapshot_lsn > 0  # rebuilt from the snapshot
        assert_identical_decisions(
            subject.serve_all("web"), reference.serve_all("web")
        )

    def test_add_shard_during_outage_is_rejected(self, tmp_path):
        cluster, _ = self._populated(tmp_path, "outage")
        cluster.kill_shard(0)
        with pytest.raises(ClusterError):
            cluster.add_shard()

    def test_restore_backlog_reseeds_controller(self, tmp_path):
        cluster, truth = self._populated(tmp_path, "backlog")
        controller = ClusterAdaptationController(
            cluster, lambda key, hint: 1.0
        )
        rows_on_0 = [
            row
            for row in range(truth.shape[0])
            if cluster.locate("web", [row])[0][0] == 0
        ]
        controller.restore_backlog(0, rows_on_0[:2])
        assert controller.shard_reports()[0].backlog_rows == 2


# -- shard-level recovery ----------------------------------------------------------


class TestShardRecovery:
    def test_recover_checks_hint_width(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix(n=6, k=4)
        shard = ClusterShard(0, n_hints=4, journal=journal)
        shard.import_rows(matrix_to_jsonable(matrix.to_dict()))
        shard.crash()
        with pytest.raises(ClusterError):
            ClusterShard.recover(str(tmp_path), shard_id=0, n_hints=9)
        recovered = ClusterShard.recover(str(tmp_path), shard_id=0, n_hints=4)
        assert recovered.matrix.shape == matrix.shape

    def test_crashed_shard_rejects_traffic(self, tmp_path):
        journal = ShardJournal(str(tmp_path))
        matrix = make_matrix(n=6, k=4)
        shard = ClusterShard(0, n_hints=4, journal=journal)
        shard.import_rows(matrix_to_jsonable(matrix.to_dict()))
        shard.crash()
        with pytest.raises(ClusterError):
            shard.serve_local(np.array([0]))
        with pytest.raises(ClusterError):
            shard.observe_local([0], [0], [1.0])
        with pytest.raises(ClusterError):
            shard.crash()  # double crash


# -- the truncation property (hypothesis) ------------------------------------------


def _build_prefix_fixture(tmp_path_factory=None, with_snapshot=False):
    """A journaled history plus the expected state after every record.

    Returns ``(segment_blob, boundaries, expected, extra_files)`` where
    ``boundaries[k]`` is the byte offset after ``k`` complete records of
    the *live* segment, ``expected[k]`` the jsonable matrix state those
    records produce, and ``extra_files`` maps extra file names (an
    installed snapshot) to their bytes.
    """
    import tempfile

    home = tempfile.mkdtemp(prefix="repro-wal-fixture-")
    try:
        journal = ShardJournal(home)
        matrix = make_matrix(n=6, k=4, seed=1)
        ServingService(matrix, journal=journal)  # logs the bootstrap import
        snapshot_state = None
        if with_snapshot:
            matrix.observe_batch([0, 1], [1, 2], [3.0, 4.0])
            journal.checkpoint(matrix_to_jsonable(matrix.to_dict()))
            snapshot_state = matrix_to_jsonable(matrix.to_dict())
        expected = [snapshot_state]
        sizes = []
        before = journal.appended_bytes

        def snap(op):
            nonlocal before
            op()
            sizes.append(journal.appended_bytes - before)
            before = journal.appended_bytes
            expected.append(matrix_to_jsonable(matrix.to_dict()))

        if not with_snapshot:
            # The bootstrap import is the first record of the segment.
            sizes.append(journal.appended_bytes)
            before = journal.appended_bytes
            expected.append(matrix_to_jsonable(matrix.to_dict()))
        snap(lambda: matrix.observe_batch([2, 3], [1, 3], [5.5, 0.125]))
        snap(lambda: matrix.observe_censored(4, 2, 40.0))
        snap(lambda: matrix.add_query("late"))
        snap(lambda: matrix.observe(6, 0, 9.75))
        snap(lambda: matrix.invalidate([1]))
        journal.close()

        live = max(
            name for name in os.listdir(home) if name.startswith("wal-")
        )
        with open(os.path.join(home, live), "rb") as handle:
            blob = handle.read()
        boundaries = [0]
        for size in sizes:
            boundaries.append(boundaries[-1] + size)
        assert boundaries[-1] == len(blob)
        extra = {}
        if with_snapshot:
            with open(os.path.join(home, "snapshot.bin"), "rb") as handle:
                extra["snapshot.bin"] = handle.read()
        return blob, boundaries, expected, extra, live
    finally:
        shutil.rmtree(home, ignore_errors=True)


_PLAIN = _build_prefix_fixture(with_snapshot=False)
_SNAPPED = _build_prefix_fixture(with_snapshot=True)


class TestTruncationProperty:
    """Crash contract: ANY byte-truncation recovers a valid prefix state."""

    @staticmethod
    def _check(fixture, offset):
        import tempfile

        blob, boundaries, expected, extra, live = fixture
        offset = min(offset, len(blob))
        with tempfile.TemporaryDirectory(prefix="repro-cut-") as home:
            for name, payload in extra.items():
                with open(os.path.join(home, name), "wb") as handle:
                    handle.write(payload)
            with open(os.path.join(home, live), "wb") as handle:
                handle.write(blob[:offset])
            complete = max(
                k for k in range(len(boundaries)) if boundaries[k] <= offset
            )
            try:
                _, state = recover_journal(home)
            except WalCorruption:
                # Typed corruption is an allowed outcome of the contract --
                # but pure truncation of a healthy log must never produce it.
                pytest.fail("byte-truncation must recover, not corrupt")
            assert_same_matrix(state.matrix, expected[complete])

    @given(offset=st.integers(min_value=0, max_value=len(_PLAIN[0])))
    @settings(deadline=None, max_examples=60)
    def test_any_truncation_recovers_a_prefix(self, offset):
        self._check(_PLAIN, offset)

    @given(offset=st.integers(min_value=0, max_value=len(_SNAPPED[0])))
    @settings(deadline=None, max_examples=60)
    def test_truncation_past_a_snapshot_recovers_a_prefix(self, offset):
        self._check(_SNAPPED, offset)

    def test_every_exact_boundary_recovers(self):
        _, boundaries, _, _, _ = _PLAIN
        for offset in boundaries:
            self._check(_PLAIN, offset)
