"""Smoke-test every example script as a fresh subprocess.

The examples are the repo's living documentation -- each narrates one
subsystem end to end and is referenced from the README.  API drift that
breaks them is invisible to the unit suite (they import through the
public ``repro`` namespace and print a story), so each one is executed
exactly the way a reader would run it: a clean interpreter with
``PYTHONPATH=src``, asserting a zero exit and a non-empty narration.

The whole file is marked ``slow`` (policy_comparison alone runs ~15 s);
the fast lane skips it with ``-m "not slow"``.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_the_example_gallery_is_where_we_expect_it():
    # Guards the glob above: an empty parametrisation would silently
    # pass while smoke-testing nothing.
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"
    assert {p.name for p in EXAMPLES} >= {"quickstart.py", "ingress_demo.py"}


@pytest.mark.slow
@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{example.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{example.name} printed nothing"
    assert "Traceback" not in proc.stderr
