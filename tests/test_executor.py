"""Tests for the simulated execution engine."""

import pytest

from repro.db.cost_model import CostModel, LatencyModel, MachineProfile
from repro.db.datagen import make_catalog
from repro.db.executor import ExecutionResult, HintedExecutor, SimulatedExecutor
from repro.db.hints import default_hint_set, all_hint_sets
from repro.db.optimizer import PlanEnumerator
from repro.db.query import QueryGenerator
from repro.errors import ExecutionError


@pytest.fixture(scope="module")
def setup():
    catalog = make_catalog("toy", seed=0)
    enumerator = PlanEnumerator(catalog)
    cost_model = CostModel(catalog)
    latency_model = LatencyModel(cost_model, MachineProfile(noise_sigma=0.0), seed=0)
    executor = SimulatedExecutor(latency_model)
    hinted = HintedExecutor(enumerator, executor)
    query = QueryGenerator(catalog, seed=6).generate("q0")
    return enumerator, executor, hinted, query


def test_execute_returns_latency(setup):
    enumerator, executor, _, query = setup
    plan = enumerator.optimize(query, default_hint_set())
    result = executor.execute(query, plan)
    assert isinstance(result, ExecutionResult)
    assert result.latency > 0
    assert not result.timed_out
    assert result.charged_time == pytest.approx(result.latency)
    assert result.observed_value == pytest.approx(result.latency)


def test_timeout_censors_long_plans(setup):
    enumerator, executor, _, query = setup
    plan = enumerator.optimize(query, default_hint_set())
    full = executor.execute(query, plan)
    timeout = full.latency / 2
    censored = executor.execute(query, plan, timeout=timeout)
    assert censored.timed_out
    assert censored.charged_time == pytest.approx(timeout)
    assert censored.observed_value == pytest.approx(timeout)
    assert censored.latency == pytest.approx(full.latency)


def test_generous_timeout_does_not_censor(setup):
    enumerator, executor, _, query = setup
    plan = enumerator.optimize(query, default_hint_set())
    full = executor.execute(query, plan)
    result = executor.execute(query, plan, timeout=full.latency * 10)
    assert not result.timed_out


def test_invalid_timeout_rejected(setup):
    enumerator, executor, _, query = setup
    plan = enumerator.optimize(query, default_hint_set())
    with pytest.raises(ExecutionError):
        executor.execute(query, plan, timeout=0.0)


def test_runs_per_measurement_validation(setup):
    _, executor, _, _ = setup
    with pytest.raises(ExecutionError):
        SimulatedExecutor(executor.latency_model, runs_per_measurement=0)


def test_hinted_executor_varies_latency_across_hints(setup):
    _, _, hinted, query = setup
    latencies = {
        hint.as_tuple(): hinted.execute_with_hint(query, hint).latency
        for hint in all_hint_sets()[:8]
    }
    assert len(set(round(v, 6) for v in latencies.values())) > 1


def test_hinted_executor_plan_matches_enumerator(setup):
    enumerator, _, hinted, query = setup
    hint = all_hint_sets()[5]
    assert hinted.plan(query, hint).signature() == enumerator.optimize(query, hint).signature()
