"""Tests for the experiment harness (runner, reporting, small figure smokes)."""

import numpy as np
import pytest

from repro.config import TCNNConfig
from repro.errors import ExperimentError
from repro.experiments import figures
from repro.experiments.reporting import (
    format_series_table,
    format_table,
    summarize_improvement,
)
from repro.experiments.runner import (
    POLICY_NAMES,
    PolicyComparison,
    default_checkpoints,
    make_policy,
    run_policy_on_workload,
)

FAST_TCNN = TCNNConfig(
    embedding_rank=3, channels=(8,), hidden_units=(8,), dropout=0.0,
    batch_size=32, max_epochs=2, convergence_window=2, seed=0,
)


def test_make_policy_builds_all_named_policies(tiny_workload):
    for name in POLICY_NAMES + ("tcnn",):
        policy = make_policy(name, tiny_workload, tcnn_config=FAST_TCNN)
        assert policy is not None
    with pytest.raises(ExperimentError):
        make_policy("alphago", tiny_workload)


def test_default_checkpoints_are_multiples_of_default_time(tiny_workload):
    checkpoints = default_checkpoints(tiny_workload)
    ratios = checkpoints / tiny_workload.default_total
    assert np.allclose(ratios, [0.25, 0.5, 1.0, 2.0, 4.0])


def test_run_policy_on_workload_returns_checkpointed_latencies(tiny_workload):
    run = run_policy_on_workload(
        tiny_workload, "random", batch_size=5, seed=0,
        checkpoints=[0.5 * tiny_workload.default_total],
        time_budget=0.5 * tiny_workload.default_total,
    )
    assert run.policy == "random"
    assert run.latencies.shape == (1,)
    assert run.latencies[0] <= tiny_workload.default_total
    assert run.trace.times[0] == 0.0
    payload = run.as_dict()
    assert set(payload) == {"policy", "checkpoints", "latencies", "overheads"}


def test_policy_comparison_mean_and_std(tiny_workload):
    comparison = PolicyComparison(
        workload=tiny_workload,
        policies=("random", "greedy"),
        checkpoints=[0.25 * tiny_workload.default_total],
        batch_size=5,
        repetitions=2,
        max_steps=30,
    )
    comparison.run()
    means = comparison.mean_latencies()
    stds = comparison.std_latencies()
    assert set(means) == {"random", "greedy"}
    assert all(v.shape == (1,) for v in means.values())
    assert all(v.shape == (1,) for v in stds.values())


def test_policy_comparison_requires_run_before_aggregation(tiny_workload):
    comparison = PolicyComparison(workload=tiny_workload)
    with pytest.raises(ExperimentError):
        comparison.mean_latencies()


# -- reporting -----------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["name", "value"], [["als", 1.5], ["nuc", 2.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "als" in lines[2]


def test_format_series_table():
    text = format_series_table({"limeqo": [1.0, 2.0]}, [0.5, 1.0], x_label="t")
    assert "limeqo" in text
    assert "t" in text


def test_summarize_improvement():
    out = summarize_improvement(100.0, {"limeqo": 50.0, "random": 80.0})
    assert out["limeqo"] == pytest.approx(50.0)
    assert out["random"] == pytest.approx(20.0)


# -- figure smoke tests (tiny scales) ----------------------------------------------
def test_table1_summary_structure():
    table = figures.table1_workload_summary(scale=0.01, seed=0)
    assert set(table) == {"job", "ceb", "stack", "dsb"}
    for row in table.values():
        assert row["default_total_s"] > row["optimal_total_s"]
        assert row["headroom"] > 1.0


def test_figure5_smoke_linear_policies_only():
    result = figures.figure5_performance(
        workload_names=("ceb",), scale=0.015, policies=("random", "limeqo"),
        batch_size=5, seed=0,
    )
    ceb = result["ceb"]
    assert set(ceb["policies"]) == {"random", "limeqo"}
    for series in ceb["policies"].values():
        assert len(series["latencies"]) == 5
        assert series["latencies"][-1] <= ceb["default_total"] + 1e-9


def test_figure14_singular_values_decay():
    result = figures.figure14_singular_values(scale=0.1, seed=0)
    workload_sv = np.asarray(result["workload_singular_values"])
    random_sv = np.asarray(result["random_singular_values"])
    assert result["effective_rank_95"] <= 10
    # The workload spectrum is far more concentrated than the random one.
    workload_share = workload_sv[:5].sum() / workload_sv.sum()
    random_share = random_sv[:5].sum() / random_sv.sum()
    assert workload_share > random_share


def test_figure17_mc_comparison_structure():
    result = figures.figure17_mc_comparison(fill_fractions=(0.2,), scale=0.3, seed=0)
    assert set(result) == {"nuc", "svt", "als"}
    for series in result.values():
        assert len(series["mse"]) == 1
        assert len(series["seconds"]) == 1
    assert result["als"]["seconds"][0] <= result["nuc"]["seconds"][0]


def test_figure10_incremental_drift_matches_model():
    result = figures.figure10_incremental_drift(scale=0.02, seed=0)
    assert len(result["intervals"]) == len(result["expected"]) == len(result["simulated"])
    assert result["expected"] == sorted(result["expected"])


def test_figure18_bayesqo_limeqo_wins(job_small_workload):
    result = figures.figure18_bayesqo(scale=1.0, per_query_budget=0.2, seed=0)
    bayes_final = result["bayesqo"]["latencies"][-1]
    limeqo_final = result["limeqo"]["latencies"][-1]
    assert limeqo_final <= bayes_final * 1.05
    assert result["total_budget"] > 0
