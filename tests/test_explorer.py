"""Tests for Algorithm 1's exploration loop and the execution oracles."""

import numpy as np
import pytest

from repro.config import ALSConfig, ExplorationConfig
from repro.core.explorer import DatabaseOracle, MatrixOracle, OfflineExplorer
from repro.core.policies import LimeQOPolicy, RandomPolicy
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ExplorationError


def truth_matrix(n=15, k=6, seed=0):
    rng = np.random.default_rng(seed)
    return rng.gamma(2.0, 2.0, (n, 3)) @ rng.gamma(2.0, 1.0, (k, 3)).T


def warm_matrix(truth):
    matrix = WorkloadMatrix(truth.shape[0], truth.shape[1])
    for i in range(truth.shape[0]):
        matrix.observe(i, 0, float(truth[i, 0]))
    return matrix


def test_matrix_oracle_validation():
    with pytest.raises(ExplorationError):
        MatrixOracle(np.ones(3))
    bad = np.ones((2, 2))
    bad[0, 0] = np.inf
    with pytest.raises(ExplorationError):
        MatrixOracle(bad)
    with pytest.raises(ExplorationError):
        MatrixOracle(-np.ones((2, 2)))


def test_matrix_oracle_execution_and_censoring():
    truth = truth_matrix()
    oracle = MatrixOracle(truth)
    full = oracle.execute(0, 1)
    assert full.latency == pytest.approx(truth[0, 1])
    censored = oracle.execute(0, 1, timeout=truth[0, 1] / 2)
    assert censored.timed_out
    assert censored.charged_time == pytest.approx(truth[0, 1] / 2)


def test_database_oracle_matches_executor(db_workload):
    oracle = DatabaseOracle(
        db_workload.executor, db_workload.queries, db_workload.hint_sets
    )
    assert oracle.shape == (db_workload.n_queries, db_workload.n_hints)
    result = oracle.execute(0, 1)
    assert result.latency == pytest.approx(db_workload.true_latencies[0, 1], rel=1e-6)
    with pytest.raises(ExplorationError):
        oracle.execute(999, 0)


def test_explorer_step_updates_matrix_and_accounting():
    truth = truth_matrix()
    matrix = warm_matrix(truth)
    explorer = OfflineExplorer(
        matrix, RandomPolicy(), MatrixOracle(truth), ExplorationConfig(batch_size=4, seed=0)
    )
    before_known = matrix.known_fraction()
    step = explorer.step()
    assert step is not None
    assert len(step.selected) == 4
    assert matrix.known_fraction() > before_known
    assert step.cumulative_exploration_time == pytest.approx(
        step.exploration_time_delta
    )
    assert explorer.cumulative_exploration_time == pytest.approx(
        step.cumulative_exploration_time
    )
    assert step.workload_latency == pytest.approx(matrix.workload_latency())


def test_explorer_charges_timeouts_for_censored_entries():
    truth = truth_matrix()
    matrix = warm_matrix(truth)
    explorer = OfflineExplorer(
        matrix, RandomPolicy(), MatrixOracle(truth), ExplorationConfig(batch_size=6, seed=1)
    )
    step = explorer.step()
    for (query, hint), result, timeout in zip(
        step.selected, step.results, step.timeouts_used
    ):
        if result.timed_out:
            assert timeout is not None
            assert matrix.is_censored(query, hint)
            assert result.charged_time == pytest.approx(timeout)
        else:
            assert matrix.is_observed(query, hint)
    assert step.num_censored == sum(r.timed_out for r in step.results)


def test_run_respects_time_budget():
    truth = truth_matrix()
    matrix = warm_matrix(truth)
    explorer = OfflineExplorer(
        matrix, RandomPolicy(), MatrixOracle(truth), ExplorationConfig(batch_size=2, seed=0)
    )
    budget = truth[:, 0].sum() * 0.2
    steps = explorer.run(time_budget=budget)
    assert steps
    # The budget may be exceeded by at most one step's worth of execution.
    assert explorer.cumulative_exploration_time <= budget + steps[-1].exploration_time_delta


def test_run_stops_when_matrix_is_exhausted():
    truth = truth_matrix(n=4, k=3)
    matrix = warm_matrix(truth)
    explorer = OfflineExplorer(
        matrix, RandomPolicy(), MatrixOracle(truth), ExplorationConfig(batch_size=4, seed=0)
    )
    explorer.run(time_budget=float("inf"), max_steps=100)
    assert explorer.step() is None
    assert matrix.known_fraction() == 1.0


def test_run_validates_budget():
    truth = truth_matrix(n=4, k=3)
    explorer = OfflineExplorer(
        warm_matrix(truth), RandomPolicy(), MatrixOracle(truth), ExplorationConfig()
    )
    with pytest.raises(ExplorationError):
        explorer.run(time_budget=0.0)


def test_workload_latency_never_increases_during_exploration():
    truth = truth_matrix(n=20, k=8, seed=5)
    matrix = warm_matrix(truth)
    policy = LimeQOPolicy(als_config=ALSConfig(rank=2, iterations=5))
    explorer = OfflineExplorer(
        matrix, policy, MatrixOracle(truth), ExplorationConfig(batch_size=3, seed=2)
    )
    latencies = [matrix.workload_latency()]
    for _ in range(10):
        step = explorer.step()
        if step is None:
            break
        latencies.append(step.workload_latency)
    assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))


def test_recommend_hints_defaults_and_improves():
    truth = truth_matrix(n=10, k=5, seed=7)
    matrix = warm_matrix(truth)
    explorer = OfflineExplorer(
        matrix, RandomPolicy(), MatrixOracle(truth), ExplorationConfig(batch_size=5, seed=3)
    )
    explorer.run(max_steps=8)
    hints = explorer.recommend_hints()
    assert len(hints) == 10
    for query, hint in enumerate(hints):
        # The recommended hint is never worse than the default *as observed*.
        assert matrix.value(query, hint) <= matrix.value(query, 0) + 1e-9


def test_matrix_oracle_execute_many_matches_scalar_path():
    truth = truth_matrix()
    oracle = MatrixOracle(truth)
    queries = [0, 1, 2, 3]
    hints = [1, 2, 0, 4]
    timeouts = [None, float(truth[1, 2]) / 2, 0.0, float(truth[3, 4]) * 2]
    batched = oracle.execute_many(queries, hints, timeouts)
    for (q, h, t), result in zip(zip(queries, hints, timeouts), batched):
        scalar = oracle.execute(q, h, timeout=t)
        assert result.latency == scalar.latency
        assert result.timed_out == scalar.timed_out
        assert result.charged_time == scalar.charged_time


def test_matrix_oracle_execute_many_without_timeouts():
    truth = truth_matrix()
    oracle = MatrixOracle(truth)
    results = oracle.execute_many([0, 1], [1, 2])
    assert not any(r.timed_out for r in results)
    assert results[0].latency == pytest.approx(truth[0, 1])
    assert oracle.execute_many([], []) == []


def test_matrix_oracle_execute_many_validation():
    oracle = MatrixOracle(truth_matrix())
    with pytest.raises(ExplorationError):
        oracle.execute_many([0, 1], [1])
    with pytest.raises(ExplorationError):
        oracle.execute_many([0], [1], timeouts=[1.0, 2.0])


def test_database_oracle_execute_many_loop_fallback(db_workload):
    oracle = DatabaseOracle(
        db_workload.executor, db_workload.queries, db_workload.hint_sets
    )
    results = oracle.execute_many([0, 1], [1, 0])
    assert len(results) == 2
    scalar = oracle.execute(0, 1)
    assert results[0].latency == pytest.approx(scalar.latency, rel=1e-6)


def test_row_distinct_chunking_preserves_order():
    chunks = OfflineExplorer._row_distinct_chunks(
        [(0, 1), (1, 2), (0, 3), (2, 1), (2, 4)]
    )
    assert chunks == [[(0, 1), (1, 2)], [(0, 3), (2, 1)], [(2, 4)]]
    assert OfflineExplorer._row_distinct_chunks([]) == []
    flat = [pair for chunk in chunks for pair in chunk]
    assert flat == [(0, 1), (1, 2), (0, 3), (2, 1), (2, 4)]


def test_step_with_scalar_only_oracle_matches_batched():
    """An oracle without execute_many must still work (protocol fallback)."""

    class ScalarOnlyOracle:
        def __init__(self, truth):
            self._inner = MatrixOracle(truth)

        def execute(self, query, hint, timeout=None):
            return self._inner.execute(query, hint, timeout=timeout)

    truth = truth_matrix()
    results = {}
    for oracle in (MatrixOracle(truth), ScalarOnlyOracle(truth)):
        matrix = warm_matrix(truth)
        explorer = OfflineExplorer(
            matrix, RandomPolicy(), oracle, ExplorationConfig(batch_size=4, seed=0)
        )
        steps = explorer.run(max_steps=5)
        results[type(oracle).__name__] = (
            [s.selected for s in steps],
            [s.cumulative_exploration_time for s in steps],
        )
    assert results["MatrixOracle"] == results["ScalarOnlyOracle"]
