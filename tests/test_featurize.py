"""Tests for plan feature stores (real and synthetic)."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plans.featurize import (
    NODE_FEATURE_DIM,
    PlanFeatureStore,
    PlanFeaturizer,
    SyntheticPlanFeatureStore,
    TreeBatch,
    pack_trees,
)


def test_pack_trees_pads_and_masks():
    small = (np.ones((3, NODE_FEATURE_DIM)), np.zeros(3, dtype=int), np.zeros(3, dtype=int))
    big = (np.ones((6, NODE_FEATURE_DIM)), np.zeros(6, dtype=int), np.zeros(6, dtype=int))
    batch = pack_trees([small, big])
    assert isinstance(batch, TreeBatch)
    assert batch.batch_size == 2
    assert batch.max_nodes == 6
    assert batch.mask[0, 1:3].sum() == 2
    assert batch.mask[0, 3:].sum() == 0
    assert batch.mask[1, 1:6].sum() == 5
    # Null node (position 0) is never marked as real.
    assert batch.mask[:, 0].sum() == 0


def test_pack_trees_rejects_empty_input():
    with pytest.raises(PlanError):
        pack_trees([])


def test_plan_feature_store_caches_and_batches(db_workload):
    store = PlanFeatureStore(
        PlanFeaturizer(db_workload.enumerator),
        db_workload.queries,
        db_workload.hint_sets,
    )
    assert store.shape == (db_workload.n_queries, db_workload.n_hints)
    first = store.tree(0, 0)
    again = store.tree(0, 0)
    assert first is again  # cached
    batch = store.batch([(0, 0), (1, 1), (2, 0)])
    assert batch.batch_size == 3
    assert batch.nodes.shape[2] == NODE_FEATURE_DIM


def test_plan_feature_store_differs_across_hints(db_workload):
    store = db_workload.feature_store()
    nodes_default, _, _ = store.tree(1, 0)
    found_difference = False
    for hint_index in range(1, db_workload.n_hints):
        nodes_other, _, _ = store.tree(1, hint_index)
        if nodes_other.shape != nodes_default.shape or not np.allclose(
            nodes_other, nodes_default
        ):
            found_difference = True
            break
    assert found_difference


def test_plan_feature_store_add_query(db_workload):
    store = db_workload.feature_store()
    new_index = store.add_query(db_workload.queries[0])
    assert new_index == db_workload.n_queries
    assert store.tree(new_index, 0)[0].shape[1] == NODE_FEATURE_DIM


def test_synthetic_store_shapes_and_determinism(tiny_workload):
    store = tiny_workload.feature_store()
    assert store.shape == (tiny_workload.n_queries, tiny_workload.n_hints)
    a = store.tree(3, 7)
    b = store.tree(3, 7)
    assert a is b
    fresh = tiny_workload.feature_store()
    c = fresh.tree(3, 7)
    assert np.allclose(a[0], c[0])


def test_synthetic_store_features_correlate_with_latency(tiny_workload):
    store = tiny_workload.feature_store(noise=0.01)
    latencies = []
    signals = []
    for i in range(0, tiny_workload.n_queries, 3):
        for j in range(0, tiny_workload.n_hints, 7):
            nodes, _, _ = store.tree(i, j)
            signals.append(nodes[1:, -2].mean())
            latencies.append(tiny_workload.true_latencies[i, j])
    corr = np.corrcoef(signals, np.log1p(latencies))[0, 1]
    assert corr > 0.4


def test_synthetic_store_add_query_and_validation():
    store = SyntheticPlanFeatureStore(np.ones((3, 2)), np.ones((4, 2)))
    index = store.add_query()
    assert index == 3
    assert store.shape == (4, 4)
    with pytest.raises(PlanError):
        store.add_query(np.ones(5))
    with pytest.raises(PlanError):
        SyntheticPlanFeatureStore(np.ones((3, 2)), np.ones((4, 3)))
    with pytest.raises(PlanError):
        SyntheticPlanFeatureStore(np.ones(3), np.ones((4, 3)))


def test_synthetic_store_batch(tiny_workload):
    store = tiny_workload.feature_store()
    batch = store.batch([(0, 0), (1, 2)])
    assert batch.batch_size == 2
    assert batch.nodes.shape[2] == NODE_FEATURE_DIM
