"""Tests for plan feature stores (real and synthetic)."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plans.featurize import (
    NODE_FEATURE_DIM,
    PlanFeatureStore,
    PlanFeaturizer,
    SyntheticPlanFeatureStore,
    TreeBatch,
    pack_trees,
)


def test_pack_trees_pads_and_masks():
    small = (np.ones((3, NODE_FEATURE_DIM)), np.zeros(3, dtype=int), np.zeros(3, dtype=int))
    big = (np.ones((6, NODE_FEATURE_DIM)), np.zeros(6, dtype=int), np.zeros(6, dtype=int))
    batch = pack_trees([small, big])
    assert isinstance(batch, TreeBatch)
    assert batch.batch_size == 2
    assert batch.max_nodes == 6
    assert batch.mask[0, 1:3].sum() == 2
    assert batch.mask[0, 3:].sum() == 0
    assert batch.mask[1, 1:6].sum() == 5
    # Null node (position 0) is never marked as real.
    assert batch.mask[:, 0].sum() == 0


def test_pack_trees_rejects_empty_input():
    with pytest.raises(PlanError):
        pack_trees([])


def test_plan_feature_store_caches_and_batches(db_workload):
    store = PlanFeatureStore(
        PlanFeaturizer(db_workload.enumerator),
        db_workload.queries,
        db_workload.hint_sets,
    )
    assert store.shape == (db_workload.n_queries, db_workload.n_hints)
    first = store.tree(0, 0)
    again = store.tree(0, 0)
    assert first is again  # cached
    batch = store.batch([(0, 0), (1, 1), (2, 0)])
    assert batch.batch_size == 3
    assert batch.nodes.shape[2] == NODE_FEATURE_DIM


def test_plan_feature_store_differs_across_hints(db_workload):
    store = db_workload.feature_store()
    nodes_default, _, _ = store.tree(1, 0)
    found_difference = False
    for hint_index in range(1, db_workload.n_hints):
        nodes_other, _, _ = store.tree(1, hint_index)
        if nodes_other.shape != nodes_default.shape or not np.allclose(
            nodes_other, nodes_default
        ):
            found_difference = True
            break
    assert found_difference


def test_plan_feature_store_add_query(db_workload):
    store = db_workload.feature_store()
    new_index = store.add_query(db_workload.queries[0])
    assert new_index == db_workload.n_queries
    assert store.tree(new_index, 0)[0].shape[1] == NODE_FEATURE_DIM


def test_synthetic_store_shapes_and_determinism(tiny_workload):
    store = tiny_workload.feature_store()
    assert store.shape == (tiny_workload.n_queries, tiny_workload.n_hints)
    a = store.tree(3, 7)
    b = store.tree(3, 7)
    assert a is b
    fresh = tiny_workload.feature_store()
    c = fresh.tree(3, 7)
    assert np.allclose(a[0], c[0])


def test_synthetic_store_features_correlate_with_latency(tiny_workload):
    store = tiny_workload.feature_store(noise=0.01)
    latencies = []
    signals = []
    for i in range(0, tiny_workload.n_queries, 3):
        for j in range(0, tiny_workload.n_hints, 7):
            nodes, _, _ = store.tree(i, j)
            signals.append(nodes[1:, -2].mean())
            latencies.append(tiny_workload.true_latencies[i, j])
    corr = np.corrcoef(signals, np.log1p(latencies))[0, 1]
    assert corr > 0.4


def test_synthetic_store_add_query_and_validation():
    store = SyntheticPlanFeatureStore(np.ones((3, 2)), np.ones((4, 2)))
    index = store.add_query()
    assert index == 3
    assert store.shape == (4, 4)
    with pytest.raises(PlanError):
        store.add_query(np.ones(5))
    with pytest.raises(PlanError):
        SyntheticPlanFeatureStore(np.ones((3, 2)), np.ones((4, 3)))
    with pytest.raises(PlanError):
        SyntheticPlanFeatureStore(np.ones(3), np.ones((4, 3)))


def test_synthetic_store_batch(tiny_workload):
    store = tiny_workload.feature_store()
    batch = store.batch([(0, 0), (1, 2)])
    assert batch.batch_size == 2
    assert batch.nodes.shape[2] == NODE_FEATURE_DIM


def _toy_store(n=4, k=3, seed=0):
    import numpy as np

    from repro.plans.featurize import SyntheticPlanFeatureStore

    rng = np.random.default_rng(seed)
    return SyntheticPlanFeatureStore(rng.random((n, 4)), rng.random((k, 4)), seed=seed)


def test_tree_batch_take_matches_repacking():
    import numpy as np

    store = _toy_store()
    cells = [(q, h) for q in range(4) for h in range(3)]
    packed = store.batch(cells)
    subset_idx = np.array([1, 4, 7])
    sliced = packed.take(subset_idx)
    repacked = store.batch([cells[i] for i in subset_idx])
    assert sliced.batch_size == 3
    # Same features; the pre-packed slice may be wider but the extra
    # columns are padding (mask 0, null children).
    width = repacked.max_nodes
    assert np.array_equal(sliced.nodes[:, :width], repacked.nodes)
    assert np.array_equal(sliced.mask[:, :width], repacked.mask)
    assert (sliced.mask[:, width:] == 0).all()


def test_full_batch_is_cached_and_invalidated_on_growth():
    store = _toy_store()
    first = store.full_batch()
    assert store.full_batch() is first
    assert first.batch_size == 4 * 3
    store.add_query()
    grown = store.full_batch()
    assert grown is not first
    assert grown.batch_size == 5 * 3


def test_plan_feature_store_full_batch(db_workload):
    from repro.plans.featurize import PlanFeatureStore, PlanFeaturizer

    store = PlanFeatureStore(
        PlanFeaturizer(db_workload.enumerator),
        db_workload.queries[:3],
        db_workload.hint_sets[:2],
    )
    full = store.full_batch()
    assert full.batch_size == 6
    assert store.full_batch() is full
