"""Tests for the hint-set (optimizer steering) interface."""

import pytest

from repro.db.hints import (
    ALL_KNOBS,
    NUM_HINT_SETS,
    HintSet,
    all_hint_sets,
    default_hint_set,
    hint_set_by_index,
)
from repro.errors import HintError


def test_there_are_exactly_49_hint_sets():
    assert NUM_HINT_SETS == 49
    assert len(all_hint_sets()) == 49


def test_default_hint_set_is_first_and_all_enabled():
    hints = all_hint_sets()
    assert hints[0].is_default
    assert all(getattr(hints[0], knob) for knob in ALL_KNOBS)


def test_hint_sets_are_unique():
    signatures = {h.as_tuple() for h in all_hint_sets()}
    assert len(signatures) == 49


def test_every_hint_set_allows_a_join_and_a_scan():
    for hint in all_hint_sets():
        assert hint.allowed_join_operators()
        assert hint.allowed_scan_operators()


def test_disabling_all_joins_is_rejected():
    with pytest.raises(HintError):
        HintSet(enable_hashjoin=False, enable_mergejoin=False, enable_nestloop=False)


def test_disabling_all_scans_is_rejected():
    with pytest.raises(HintError):
        HintSet(
            enable_indexscan=False,
            enable_seqscan=False,
            enable_indexonlyscan=False,
        )


def test_as_gucs_renders_on_off_for_every_knob():
    gucs = HintSet(enable_hashjoin=False).as_gucs()
    assert gucs["enable_hashjoin"] == "off"
    assert gucs["enable_mergejoin"] == "on"
    assert set(gucs) == set(ALL_KNOBS)


def test_hint_set_by_index_roundtrip():
    hints = all_hint_sets()
    assert hint_set_by_index(0) == hints[0]
    assert hint_set_by_index(48) == hints[48]


def test_hint_set_by_index_out_of_range():
    with pytest.raises(HintError):
        hint_set_by_index(49)
    with pytest.raises(HintError):
        hint_set_by_index(-1)


def test_default_hint_set_helper():
    assert default_hint_set().is_default


def test_allowed_operators_reflect_disabled_knobs():
    hint = HintSet(enable_nestloop=False, enable_indexscan=False)
    assert "nested_loop" not in hint.allowed_join_operators()
    assert "index_scan" not in hint.allowed_scan_operators()
    assert "hash_join" in hint.allowed_join_operators()
    assert "seq_scan" in hint.allowed_scan_operators()
