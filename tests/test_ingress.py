"""Tests for the asyncio ingress (repro.ingress).

Three layers, matching the module's design:

* :class:`CoalescerCore` is a pure state machine driven by an explicit
  clock, so the load-bearing timing/ordering properties are checked
  exactly -- including hypothesis sweeps over arbitrary submit/advance
  interleavings (FIFO equivalence with sequential serving, per-caller
  routing, and the ``max_wait_s`` SLO bound under a fake clock);
* :class:`PeriodicTicker` hosts control loops as background tasks that
  must survive their own exceptions;
* :class:`ServiceIngress` / :class:`ClusterIngress` wire the core to
  futures and timers -- decisions must equal the synchronous batch path,
  route to the right caller, shed (never error) on overflow, and drain
  on shutdown.
"""

import asyncio
import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ServingCluster
from repro.config import ALSConfig, IngressConfig
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ClusterError, IngressError
from repro.experiments.cluster import populate_cluster
from repro.ingress import (
    ClusterIngress,
    CoalescerCore,
    IngressDecision,
    IngressStats,
    PeriodicTicker,
    ServiceIngress,
)
from repro.serving import IncrementalALSRefresher, ServingService


def make_matrix(n=12, k=5, seed=2):
    rng = np.random.default_rng(seed)
    truth = rng.uniform(0.5, 20.0, size=(n, k))
    matrix = WorkloadMatrix(n, k)
    observed = rng.random((n, k)) < 0.5
    observed[:, 0] = True
    rows, cols = np.nonzero(observed)
    matrix.observe_batch(rows, cols, truth[rows, cols])
    return matrix


def make_service(**kwargs):
    return ServingService(make_matrix(), **kwargs)


def run(coro):
    return asyncio.run(coro)


# -- config ----------------------------------------------------------------------


class TestIngressConfig:
    def test_defaults_are_valid(self):
        config = IngressConfig()
        assert config.max_batch >= 1
        assert config.queue_capacity >= config.max_batch

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_s": -0.1},
            {"queue_capacity": 1, "max_batch": 2},
            {"tick_interval_s": 0.0},
            {"refresh_interval_s": -1.0},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(Exception):
            IngressConfig(**kwargs)


# -- the pure core ---------------------------------------------------------------


class TestCoalescerCore:
    def test_tokens_increase_and_fifo_batches(self):
        core = CoalescerCore(IngressConfig(max_batch=3, max_wait_s=1.0))
        tokens = [core.submit(f"p{i}", now=0.0) for i in range(3)]
        assert tokens == [0, 1, 2]
        assert core.ready(0.0)  # size trigger
        batch = core.take_batch(0.0)
        assert batch == [(0, "p0"), (1, "p1"), (2, "p2")]
        assert core.queue_depth == 0

    def test_not_ready_before_deadline_or_size(self):
        core = CoalescerCore(IngressConfig(max_batch=4, max_wait_s=0.5))
        core.submit("a", now=10.0)
        assert not core.ready(10.0)
        assert not core.ready(10.49)
        assert core.take_batch(10.4) == []
        assert core.ready(10.5)  # oldest hit the SLO bound
        assert core.next_deadline() == pytest.approx(10.5)

    def test_time_trigger_flushes_fifo_prefix(self):
        core = CoalescerCore(IngressConfig(max_batch=2, max_wait_s=1.0))
        core.submit("a", now=0.0)
        core.submit("b", now=0.5)
        core.submit("c", now=0.9)  # size trigger at depth 2 already passed
        batch = core.take_batch(1.0)
        assert [p for _, p in batch] == ["a", "b"]
        assert [p for _, p in core.take_batch(2.0)] == ["c"]

    def test_sheds_at_capacity(self):
        core = CoalescerCore(
            IngressConfig(max_batch=2, max_wait_s=1.0, queue_capacity=2)
        )
        assert core.submit("a", 0.0) is not None
        assert core.submit("b", 0.0) is not None
        assert core.submit("c", 0.0) is None
        assert core.shed == 1 and core.submitted == 3
        core.take_batch(0.0)
        assert core.submit("d", 0.0) is not None  # capacity freed by flush

    def test_force_drains_regardless_of_readiness(self):
        core = CoalescerCore(IngressConfig(max_batch=8, max_wait_s=100.0))
        core.submit("a", 0.0)
        assert core.take_batch(0.0) == []
        assert [p for _, p in core.take_batch(0.0, force=True)] == ["a"]

    def test_clock_going_backwards_raises(self):
        core = CoalescerCore(IngressConfig(max_batch=1, max_wait_s=0.0))
        core.submit("a", now=5.0)
        with pytest.raises(IngressError):
            core.take_batch(4.0, force=True)

    def test_telemetry(self):
        core = CoalescerCore(IngressConfig(max_batch=2, max_wait_s=10.0))
        core.submit("a", 0.0)
        core.submit("b", 1.0)
        core.take_batch(2.0)
        assert core.mean_batch_size == 2.0
        assert core.mean_queue_wait_s == pytest.approx(1.5)  # waited 2.0 and 1.0
        assert core.max_queue_wait_s == pytest.approx(2.0)
        assert core.max_queue_depth == 2


# -- hypothesis: interleaving equivalence, routing, SLO bound ---------------------


def drive_core(core, schedule):
    """A faithful shell: flush whenever ready, else wait for the deadline.

    ``schedule`` is a list of (delay, payload) arrivals.  Returns the
    admitted payloads (in submit order), the flushed batches, and the
    token->payload routing of every flushed request.
    """
    admitted, batches, routed = [], [], {}
    now = 0.0
    token_payload = {}
    for delay, payload in schedule:
        target = now + delay
        # Before the next arrival, fire any deadline flushes that are due.
        while True:
            deadline = core.next_deadline()
            if deadline is None or deadline > target:
                break
            now = deadline
            batch = core.take_batch(now)
            batches.append(batch)
            routed.update({t: p for t, p in batch})
        now = target
        token = core.submit(payload, now)
        if token is not None:
            admitted.append(payload)
            token_payload[token] = payload
        while core.ready(now):  # size-triggered flush
            batch = core.take_batch(now)
            batches.append(batch)
            routed.update({t: p for t, p in batch})
    while core.queue_depth:  # shutdown drain
        deadline = core.next_deadline()
        now = max(now, deadline)
        batch = core.take_batch(now)
        batches.append(batch)
        routed.update({t: p for t, p in batch})
    return admitted, batches, routed, token_payload


schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
        st.integers(min_value=0, max_value=11),
    ),
    min_size=1,
    max_size=60,
)
configs = st.builds(
    IngressConfig,
    max_batch=st.integers(min_value=1, max_value=8),
    max_wait_s=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    queue_capacity=st.integers(min_value=8, max_value=64),
)


class TestCoalescerProperties:
    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, config=configs)
    def test_flush_order_equals_sequential_order(self, schedule, config):
        """Concatenated batches == admitted submit order, each exactly once.

        The backend snapshot lookup is a pure function of the payload, so
        FIFO-without-loss-or-duplication is exactly the statement that any
        interleaving yields the same decisions as serving the admitted
        stream sequentially through the sync path.
        """
        core = CoalescerCore(config)
        admitted, batches, _, _ = drive_core(core, schedule)
        replayed = [p for batch in batches for _, p in batch]
        assert replayed == admitted
        assert all(len(b) <= config.max_batch for b in batches if b)

    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, config=configs)
    def test_every_response_routes_to_its_caller(self, schedule, config):
        core = CoalescerCore(config)
        _, _, routed, token_payload = drive_core(core, schedule)
        assert routed == token_payload

    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, config=configs)
    def test_no_admitted_request_waits_past_the_slo_bound(self, schedule, config):
        core = CoalescerCore(config)
        drive_core(core, schedule)
        assert core.max_queue_wait_s <= config.max_wait_s + 1e-9


# -- PeriodicTicker --------------------------------------------------------------


class TestPeriodicTicker:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(IngressError):
            PeriodicTicker(lambda: None, 0.0)

    def test_runs_periodically_and_stops(self):
        calls = []

        async def scenario():
            ticker = PeriodicTicker(lambda: calls.append(1), 0.005, "t")
            ticker.start()
            with pytest.raises(IngressError):
                ticker.start()  # double start
            await asyncio.sleep(0.03)
            await ticker.stop()
            assert not ticker.running
            settled = len(calls)
            await asyncio.sleep(0.02)
            assert len(calls) == settled  # genuinely stopped

        run(scenario())
        assert len(calls) >= 2

    def test_exceptions_are_contained(self):
        def boom():
            raise ValueError("tick failed")

        async def scenario():
            ticker = PeriodicTicker(boom, 0.005, "b")
            ticker.start()
            await asyncio.sleep(0.03)
            assert ticker.running  # still alive despite failures
            await ticker.stop()
            return ticker

        ticker = run(scenario())
        assert ticker.errors >= 2
        assert isinstance(ticker.last_error, ValueError)
        assert ticker.runs == 0

    def test_fire_now_counts_a_run(self):
        ticker = PeriodicTicker(lambda: None, 1.0)
        ticker.fire_now()
        assert ticker.runs == 1

    def test_start_outside_running_loop_raises(self):
        ticker = PeriodicTicker(lambda: None, 1.0)
        with pytest.raises(IngressError):
            ticker.start()

    def test_stop_tolerates_every_lifecycle_state(self):
        # Debug mode makes asyncio report pending-task destruction and
        # unretrieved task exceptions through the loop exception handler;
        # a hardened ticker shutdown must trigger neither.
        problems = []

        async def scenario():
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, context: problems.append(context)
            )
            ticker = PeriodicTicker(lambda: None, 0.005, "clean")
            await ticker.stop()  # never started: no-op
            ticker.start()
            await asyncio.sleep(0.012)
            await ticker.stop()
            await ticker.stop()  # idempotent
            assert not ticker.running
            ticker.start()  # restartable after a clean stop
            await ticker.stop()
            assert asyncio.all_tasks() == {asyncio.current_task()}

        asyncio.run(scenario(), debug=True)
        gc.collect()
        assert problems == []

    def test_sync_cancel_never_leaks_pending_tasks(self):
        problems = []

        async def scenario():
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, context: problems.append(context)
            )
            ticker = PeriodicTicker(lambda: None, 0.005, "teardown")
            ticker.cancel()  # never started: no-op
            ticker.start()
            await asyncio.sleep(0.012)
            ticker.cancel()  # the no-await teardown path
            assert not ticker.running
            ticker.cancel()  # idempotent
            for _ in range(5):  # let the cancellation unwind
                await asyncio.sleep(0)
            assert asyncio.all_tasks() == {asyncio.current_task()}
            ticker.start()  # restartable after a sync cancel
            await ticker.stop()

        asyncio.run(scenario(), debug=True)
        gc.collect()
        assert problems == []


# -- ServiceIngress --------------------------------------------------------------


class TestServiceIngress:
    def test_requires_start(self):
        ingress = ServiceIngress(make_service())

        async def scenario():
            with pytest.raises(IngressError):
                await ingress.serve(0)

        run(scenario())

    def test_double_start_raises(self):
        async def scenario():
            async with ServiceIngress(make_service()) as ingress:
                with pytest.raises(IngressError):
                    await ingress.start()

        run(scenario())

    def test_out_of_range_query_raises(self):
        async def scenario():
            async with ServiceIngress(make_service()) as ingress:
                with pytest.raises(IngressError):
                    await ingress.serve(-1)
                with pytest.raises(IngressError):
                    await ingress.serve(9999)

        run(scenario())

    def test_decisions_match_sync_batch_path(self):
        service = make_service()
        sync_service = ServingService(make_matrix())
        queries = [3, 0, 7, 3, 11, 5, 0]
        expected = sync_service.serve_batch(np.asarray(queries, dtype=np.int64))

        async def scenario():
            config = IngressConfig(max_batch=3, max_wait_s=0.001)
            async with ServiceIngress(service, config) as ingress:
                return await asyncio.gather(*(ingress.serve(q) for q in queries))

        results = run(scenario())
        assert [r.query for r in results] == queries  # routed to the caller
        assert [r.hint for r in results] == expected.hints.tolist()
        assert [r.used_default for r in results] == expected.used_default.tolist()
        np.testing.assert_allclose(
            [r.expected_latency for r in results], expected.expected_latency
        )
        assert not any(r.shed for r in results)

    def test_serve_many_equals_individual_serves(self):
        queries = [1, 4, 2, 2, 9]

        async def gather_one_by_one():
            async with ServiceIngress(make_service()) as ingress:
                return await asyncio.gather(*(ingress.serve(q) for q in queries))

        async def bulk():
            async with ServiceIngress(make_service()) as ingress:
                return await ingress.serve_many(queries)

        assert run(gather_one_by_one()) == run(bulk())

    def test_burst_past_capacity_sheds_default_plans(self):
        service = make_service()
        config = IngressConfig(max_batch=4, max_wait_s=0.001, queue_capacity=8)

        async def scenario():
            async with ServiceIngress(service, config) as ingress:
                answers = await ingress.serve_many([i % 12 for i in range(50)])
                return answers, ingress.stats()

        answers, stats = run(scenario())
        shed = [a for a in answers if a.shed]
        assert len(answers) == 50
        assert len(shed) == 50 - 8  # everything past capacity, none errored
        assert all(a.used_default and a.expected_latency == float("inf") for a in shed)
        assert stats.shed == len(shed)
        assert service.stats().shed == len(shed)
        assert stats.max_queue_depth <= config.queue_capacity
        assert stats.served == 50 - len(shed)

    def test_stop_drains_pending_requests(self):
        service = make_service()
        # An hour-long SLO: only the shutdown drain can answer these.
        config = IngressConfig(max_batch=100, max_wait_s=3600.0)

        async def scenario():
            ingress = ServiceIngress(service, config)
            await ingress.start()
            pending = asyncio.ensure_future(ingress.serve_many([1, 2, 3]))
            await asyncio.sleep(0)  # let the submits land
            assert ingress.stats().queue_depth == 3
            await ingress.stop()
            return await pending

        results = run(scenario())
        assert [r.query for r in results] == [1, 2, 3]
        assert not any(r.shed for r in results)

    def test_background_tickers_fire_and_report(self):
        ticks = []

        class FakeController:
            def tick(self):
                ticks.append(1)

        service = make_service(
            refresher=IncrementalALSRefresher(ALSConfig(rank=2, iterations=2))
        )
        config = IngressConfig(tick_interval_s=0.005, refresh_interval_s=0.005)

        async def scenario():
            async with ServiceIngress(
                service, config, controller=FakeController()
            ) as ingress:
                assert all(t.running for t in ingress.tickers)
                await asyncio.sleep(0.03)
                stats = ingress.stats()
            assert not any(t.running for t in ingress.tickers)
            return stats

        stats = run(scenario())
        assert len(ticks) >= 2
        assert stats.background_ticks["adaptation"] >= 2
        assert set(stats.background_ticks) == {"adaptation", "refresh"}

    def test_record_measured_skips_shed_and_validates_shape(self):
        service = make_service()

        async def scenario():
            async with ServiceIngress(service) as ingress:
                return await ingress.serve_many([0, 1, 2])

        answers = run(scenario())
        ingress = ServiceIngress(service)
        with pytest.raises(IngressError):
            ingress.record_measured(answers, [1.0])  # wrong shape
        shed_only = [
            IngressDecision(None, 0, 0, True, float("inf"), True)
        ]
        ingress.record_measured(shed_only, [1.0])  # no-op, no crash
        ingress.record_measured(
            answers, [a.expected_latency for a in answers]
        )

    def test_stats_roundtrip(self):
        async def scenario():
            async with ServiceIngress(make_service()) as ingress:
                await ingress.serve_many([0, 1])
                return ingress.stats()

        stats = run(scenario())
        assert isinstance(stats, IngressStats)
        payload = stats.as_dict()
        assert payload["submitted"] == 2 and payload["shed"] == 0
        assert "mean_batch" in str(stats)


# -- ClusterIngress --------------------------------------------------------------


def make_cluster(tenants=("acme", "globex")):
    matrix = make_matrix(n=20, k=5, seed=4)
    cluster = ServingCluster(
        n_shards=2,
        n_hints=matrix.n_hints,
        als_config=ALSConfig(rank=2, iterations=2, seed=0),
    )
    for tenant in tenants:
        populate_cluster(cluster, tenant, matrix)
    return cluster


class TestClusterIngress:
    def test_mixed_tenant_decisions_match_sync_path(self):
        cluster = make_cluster()
        sync_cluster = make_cluster()
        arrivals = [("acme", 3), ("globex", 0), ("acme", 19), ("globex", 7)]
        expected = sync_cluster.serve_mixed(arrivals)

        async def scenario():
            async with ClusterIngress(cluster) as ingress:
                return await asyncio.gather(
                    *(ingress.serve(t, q) for t, q in arrivals)
                )

        results = run(scenario())
        assert [(r.tenant, r.query) for r in results] == arrivals
        assert [r.hint for r in results] == expected.hints.tolist()
        np.testing.assert_allclose(
            [r.expected_latency for r in results], expected.expected_latency
        )

    def test_unknown_tenant_and_bad_query_raise(self):
        async def scenario():
            async with ClusterIngress(make_cluster()) as ingress:
                with pytest.raises(ClusterError):
                    await ingress.serve("ghost", 0)
                with pytest.raises(IngressError):
                    await ingress.serve("acme", 10_000)

        run(scenario())

    def test_shed_counts_reach_cluster_stats(self):
        cluster = make_cluster()
        config = IngressConfig(max_batch=4, max_wait_s=0.001, queue_capacity=4)

        async def scenario():
            async with ClusterIngress(cluster, config) as ingress:
                return await ingress.serve_many(
                    [("acme", i % 20) for i in range(30)]
                )

        answers = run(scenario())
        shed = sum(1 for a in answers if a.shed)
        assert shed == 30 - 4
        assert cluster.stats().shed_decisions == shed
        assert all(a.used_default for a in answers if a.shed)

    def test_record_shed_rejects_negative(self):
        with pytest.raises(ClusterError):
            make_cluster().record_shed(-1)

    def test_refresh_scheduler_ticks_in_background(self):
        cluster = make_cluster()
        config = IngressConfig(refresh_interval_s=0.005)

        async def scenario():
            async with ClusterIngress(cluster, config) as ingress:
                await asyncio.sleep(0.03)
                return ingress.stats()

        stats = run(scenario())
        assert stats.background_ticks["refresh-scheduler"] >= 2
