"""Integration tests: the whole pipeline on both workload paths."""

import pytest

from repro.config import ALSConfig, ExplorationConfig
from repro.core.explorer import DatabaseOracle, MatrixOracle, OfflineExplorer
from repro.core.limeqo import LimeQO
from repro.core.plan_cache import PlanCache
from repro.core.policies import GreedyPolicy, LimeQOPolicy, RandomPolicy
from repro.core.simulation import ExplorationSimulator
from repro.workloads.shift import add_etl_query


def test_full_pipeline_on_synthetic_workload(ceb_mini_workload):
    """Warm start -> explore -> serve with no regressions, near optimal."""
    workload = ceb_mini_workload
    simulator = ExplorationSimulator(
        workload.true_latencies, config=ExplorationConfig(batch_size=10, seed=0)
    )
    trace = simulator.run(LimeQOPolicy(), time_budget=4.0 * workload.default_total)

    assert trace.final_latency < workload.default_total
    # Within 2x of the oracle after 4x the default workload time.
    assert trace.final_latency <= workload.optimal_total * 2.0

    # Serve the result through the plan cache; nothing regresses.
    matrix = simulator.initial_matrix()
    explorer = OfflineExplorer(
        matrix, LimeQOPolicy(), MatrixOracle(workload.true_latencies),
        ExplorationConfig(batch_size=10, seed=0),
    )
    explorer.run(time_budget=2.0 * workload.default_total)
    cache = PlanCache(matrix)
    assert cache.verify_no_regression(workload.true_latencies)
    served = sum(
        workload.true_latencies[d.query, d.hint] for d in cache.lookup_all()
    )
    assert served <= workload.default_total * 1.01


def test_full_pipeline_on_database_substrate(db_workload):
    """The same loop driven by the simulated DBMS instead of a matrix."""
    oracle = DatabaseOracle(
        db_workload.executor, db_workload.queries, db_workload.hint_sets
    )
    system = LimeQO(
        n_hints=db_workload.n_hints,
        oracle=oracle,
        policy=LimeQOPolicy(als_config=ALSConfig(rank=3, iterations=8)),
        config=ExplorationConfig(batch_size=4, seed=0),
    )
    for i, query in enumerate(db_workload.queries):
        system.register_query(query.name,
                              default_latency=float(db_workload.true_latencies[i, 0]))
    default_total = db_workload.default_total
    system.explore(time_budget=2.0 * default_total)

    hints = system.recommended_hints()
    served = sum(
        db_workload.true_latencies[i, h] * 0 + db_workload.true_latencies[i, h]
        for i, h in enumerate(hints)
    )
    # Simulator noise between the registered default latency and a re-run is
    # small; allow a tiny margin.
    assert served <= default_total * 1.05
    assert system.plan_cache().verify_no_regression(db_workload.true_latencies)


def test_limeqo_beats_greedy_with_etl_query(tiny_workload):
    """Figure 8's story: Greedy keeps re-probing the hopeless ETL query."""
    workload = add_etl_query(
        tiny_workload, latency=0.3 * tiny_workload.default_total, seed=0
    )
    simulator = ExplorationSimulator(
        workload.true_latencies, config=ExplorationConfig(batch_size=5, seed=0)
    )
    budget = 1.5 * workload.default_total
    limeqo = simulator.run(LimeQOPolicy(), time_budget=budget)
    greedy = simulator.run(GreedyPolicy(), time_budget=budget)
    assert limeqo.final_latency <= greedy.final_latency * 1.02


def test_policies_converge_to_optimal_with_exhaustive_budget(tiny_workload):
    simulator = ExplorationSimulator(
        tiny_workload.true_latencies, config=ExplorationConfig(batch_size=20, seed=0)
    )
    budget = tiny_workload.exhaustive_exploration_time() * 2
    for policy in (RandomPolicy(), LimeQOPolicy()):
        trace = simulator.run(policy, time_budget=budget, max_steps=10_000)
        # Having explored (or censored) everything, the served latency equals
        # the oracle optimum.
        assert trace.final_latency == pytest.approx(
            tiny_workload.optimal_total, rel=1e-6
        )


def test_workload_shift_rows_can_be_added_mid_run(tiny_workload):
    truth = tiny_workload.true_latencies
    n, k = truth.shape
    oracle = MatrixOracle(truth)
    system = LimeQO(
        n_hints=k, oracle=oracle,
        policy=LimeQOPolicy(als_config=ALSConfig(rank=3, iterations=8)),
        config=ExplorationConfig(batch_size=5, seed=0),
    )
    for i in range(n // 2):
        system.register_query(f"q{i}", default_latency=float(truth[i, 0]))
    system.explore(time_budget=0.5 * truth[: n // 2, 0].sum())
    latency_before = system.workload_latency()
    for i in range(n // 2, n):
        system.register_query(f"q{i}", default_latency=float(truth[i, 0]))
    system.explore(time_budget=0.5 * truth[:, 0].sum())
    assert system.num_queries == n
    assert system.workload_latency() <= latency_before + truth[n // 2:, 0].sum() + 1e-9
