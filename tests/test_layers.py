"""Tests for the neural-network layers."""

import numpy as np
import pytest

from repro.errors import NeuralNetworkError
from repro.nn.autograd import Tensor
from repro.nn.layers import Dropout, Embedding, Linear, Module, ReLU, Sequential


def test_linear_shapes_and_gradients():
    layer = Linear(4, 3, seed=0)
    x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
    out = layer(x)
    assert out.shape == (5, 3)
    out.sum().backward()
    assert layer.weight.grad is not None
    assert layer.bias.grad is not None
    assert layer.weight.grad.shape == (4, 3)


def test_linear_supports_3d_inputs():
    layer = Linear(4, 2, seed=0)
    x = Tensor(np.ones((2, 6, 4)))
    assert layer(x).shape == (2, 6, 2)


def test_linear_validation():
    with pytest.raises(NeuralNetworkError):
        Linear(0, 3)


def test_relu_module():
    out = ReLU()(Tensor(np.array([-1.0, 2.0])))
    assert np.allclose(out.data, [0.0, 2.0])


def test_dropout_behaviour_in_train_and_eval():
    layer = Dropout(0.5, seed=0)
    x = Tensor(np.ones((100, 10)))
    layer.train()
    dropped = layer(x)
    assert (dropped.data == 0).any()
    # Inverted dropout keeps the expectation roughly constant.
    assert abs(dropped.data.mean() - 1.0) < 0.2
    layer.eval()
    assert np.allclose(layer(x).data, 1.0)


def test_dropout_validation():
    with pytest.raises(NeuralNetworkError):
        Dropout(1.0)


def test_embedding_lookup_and_gradient():
    table = Embedding(10, 4, seed=0)
    out = table(np.array([1, 1, 3]))
    assert out.shape == (3, 4)
    out.sum().backward()
    grad = table.weight.grad
    assert np.allclose(grad[1], 2.0 * np.ones(4) * 0 + grad[1])  # shape sanity
    assert np.count_nonzero(grad.sum(axis=1)) == 2


def test_embedding_rejects_out_of_range_indices():
    table = Embedding(4, 2)
    with pytest.raises(NeuralNetworkError):
        table(np.array([4]))


def test_embedding_grow_preserves_existing_rows():
    table = Embedding(3, 2, seed=0)
    before = table.weight.data.copy()
    table.grow(5)
    assert table.num_embeddings == 5
    assert table.weight.data.shape == (5, 2)
    assert np.allclose(table.weight.data[:3], before)
    table.grow(4)  # shrinking is a no-op
    assert table.num_embeddings == 5


def test_sequential_chains_modules_and_collects_parameters():
    model = Sequential([Linear(4, 8, seed=0), ReLU(), Linear(8, 1, seed=1)])
    out = model(Tensor(np.ones((2, 4))))
    assert out.shape == (2, 1)
    assert len(model.parameters()) == 4
    assert len(model) == 3
    model.zero_grad()
    out.sum().backward()
    assert all(p.grad is not None for p in model.parameters())


def test_state_dict_roundtrip():
    model = Sequential([Linear(3, 2, seed=0), ReLU(), Linear(2, 1, seed=1)])
    state = model.state_dict()
    clone = Sequential([Linear(3, 2, seed=5), ReLU(), Linear(2, 1, seed=6)])
    clone.load_state_dict(state)
    x = Tensor(np.ones((1, 3)))
    assert np.allclose(model(x).data, clone(x).data)


def test_load_state_dict_validates_names_and_shapes():
    model = Linear(3, 2)
    with pytest.raises(NeuralNetworkError):
        model.load_state_dict({})
    bad = model.state_dict()
    bad["weight"] = np.ones((5, 5))
    with pytest.raises(NeuralNetworkError):
        model.load_state_dict(bad)


def test_train_eval_propagates_to_children():
    model = Sequential([Linear(2, 2), Dropout(0.3)])
    model.eval()
    assert not model._ordered[1].training
    model.train()
    assert model._ordered[1].training


def test_module_forward_is_abstract():
    with pytest.raises(NotImplementedError):
        Module()(1)
