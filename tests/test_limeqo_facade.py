"""Tests for the top-level LimeQO facade (offline + online paths)."""

import numpy as np
import pytest

from repro.config import ALSConfig, ExplorationConfig
from repro.core.explorer import MatrixOracle
from repro.core.limeqo import LimeQO
from repro.core.policies import LimeQOPolicy
from repro.errors import ExplorationError


@pytest.fixture
def truth():
    rng = np.random.default_rng(9)
    return rng.gamma(2.0, 2.0, (12, 3)) @ rng.gamma(2.0, 1.0, (8, 3)).T


@pytest.fixture
def system(truth):
    oracle = MatrixOracle(truth)
    return LimeQO(
        n_hints=truth.shape[1],
        oracle=oracle,
        policy=LimeQOPolicy(als_config=ALSConfig(rank=2, iterations=5)),
        config=ExplorationConfig(batch_size=3, seed=0),
    )


def test_requires_at_least_two_hints(truth):
    with pytest.raises(ExplorationError):
        LimeQO(n_hints=1, oracle=MatrixOracle(truth))


def test_matrix_unavailable_before_registration(system):
    with pytest.raises(ExplorationError):
        _ = system.matrix
    with pytest.raises(ExplorationError):
        system.explore(10.0)


def test_register_query_observes_default(system, truth):
    index = system.register_query("q0")
    assert index == 0
    assert system.num_queries == 1
    assert system.matrix.is_observed(0, 0)
    assert system.matrix.value(0, 0) == pytest.approx(truth[0, 0])
    # Re-registering the same name is a no-op returning the same row.
    assert system.register_query("q0") == 0
    assert system.num_queries == 1


def test_register_query_with_known_default_latency(system):
    index = system.register_query("q0", default_latency=42.0)
    assert system.matrix.value(index, 0) == 42.0


def test_unknown_query_lookup_raises(system):
    system.register_query("q0")
    with pytest.raises(ExplorationError):
        system.query_index("mystery")


def test_explore_and_recommend(system, truth):
    for i in range(truth.shape[0]):
        system.register_query(f"q{i}", default_latency=float(truth[i, 0]))
    default_total = truth[:, 0].sum()
    steps = system.explore(time_budget=2.0 * default_total)
    assert steps
    assert system.exploration_time > 0
    hints = system.recommended_hints()
    assert len(hints) == truth.shape[0]
    served = sum(truth[i, h] for i, h in enumerate(hints))
    assert served <= default_total + 1e-9
    assert system.workload_latency() <= default_total + 1e-9


def test_online_lookup_never_regresses(system, truth):
    for i in range(truth.shape[0]):
        system.register_query(f"q{i}", default_latency=float(truth[i, 0]))
    system.explore(time_budget=1.0 * truth[:, 0].sum())
    cache = system.plan_cache()
    assert cache.verify_no_regression(truth)
    decision = system.lookup("q0")
    assert 0 <= decision.hint < truth.shape[1]


def test_new_query_after_exploration(system, truth):
    for i in range(6):
        system.register_query(f"q{i}", default_latency=float(truth[i, 0]))
    system.explore(time_budget=0.5 * truth[:6, 0].sum())
    new_index = system.register_query("q_new", default_latency=float(truth[7, 0]))
    assert new_index == 6
    # The new row starts with only the default observed.
    assert system.matrix.observed_count_in_row(new_index) == 1
    system.explore(time_budget=0.5 * truth[:6, 0].sum())
    assert system.matrix.n_queries == 7


def test_summary_keys(system):
    system.register_query("q0", default_latency=1.0)
    summary = system.summary()
    for key in ("queries", "hints", "observed_fraction", "workload_latency",
                "exploration_time", "overhead_seconds"):
        assert key in summary
