"""Tests for the MSE and censored losses (paper Equation 8)."""

import numpy as np
import pytest

from repro.errors import NeuralNetworkError
from repro.nn.autograd import parameter
from repro.nn.losses import censored_mse_loss, mse_loss


def test_mse_loss_value_and_gradient():
    predictions = parameter(np.array([1.0, 2.0, 3.0]))
    loss = mse_loss(predictions, np.array([1.0, 2.0, 5.0]))
    assert loss.item() == pytest.approx(4.0 / 3.0)
    loss.backward()
    assert np.allclose(predictions.grad, [0.0, 0.0, 2 * (3.0 - 5.0) / 3.0])


def test_mse_loss_shape_validation():
    with pytest.raises(NeuralNetworkError):
        mse_loss(parameter(np.ones(3)), np.ones(4))


def test_censored_loss_without_thresholds_is_mse():
    predictions = parameter(np.array([1.0, 4.0]))
    targets = np.array([2.0, 2.0])
    assert censored_mse_loss(predictions, targets).item() == pytest.approx(
        mse_loss(parameter(np.array([1.0, 4.0])), targets).item()
    )


def test_censored_loss_ignores_predictions_above_threshold():
    # Sample 0: censored at 5, prediction 7 (>= threshold) -> no penalty.
    # Sample 1: censored at 5, prediction 2 (< threshold)  -> penalised.
    predictions = parameter(np.array([7.0, 2.0]))
    targets = np.array([5.0, 5.0])
    thresholds = np.array([5.0, 5.0])
    loss = censored_mse_loss(predictions, targets, thresholds)
    assert loss.item() == pytest.approx(((2.0 - 5.0) ** 2) / 2.0)
    loss.backward()
    assert predictions.grad[0] == pytest.approx(0.0)
    assert predictions.grad[1] != 0.0


def test_censored_loss_mixes_censored_and_uncensored_samples():
    predictions = parameter(np.array([1.0, 10.0, 3.0]))
    targets = np.array([2.0, 6.0, 3.0])
    thresholds = np.array([0.0, 6.0, 0.0])  # only the middle sample is censored
    loss = censored_mse_loss(predictions, targets, thresholds)
    # Sample 0 contributes (1-2)^2, sample 1 is above its threshold (no
    # penalty), sample 2 contributes 0.
    assert loss.item() == pytest.approx(1.0 / 3.0)


def test_censored_loss_validation():
    with pytest.raises(NeuralNetworkError):
        censored_mse_loss(parameter(np.ones(2)), np.ones(3))
    with pytest.raises(NeuralNetworkError):
        censored_mse_loss(parameter(np.ones(2)), np.ones(2), np.ones(3))
