"""Tests for the ALS / SVT / nuclear-norm completers (Figure 17 machinery)."""

import numpy as np
import pytest

from repro.config import ALSConfig
from repro.core.matrix_completion import (
    ALSCompleter,
    NuclearNormCompleter,
    SVTCompleter,
    completion_mse,
    completion_rmse,
)
from repro.errors import CompletionError


def low_rank_matrix(n=40, k=15, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.gamma(2.0, 1.0, (n, rank)) @ rng.gamma(2.0, 1.0, (k, rank)).T


def mask_for(shape, fill, seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random(shape) < fill).astype(float)
    mask[:, 0] = 1.0
    return mask


@pytest.mark.parametrize(
    "completer",
    [
        ALSCompleter(ALSConfig(rank=3, iterations=25)),
        SVTCompleter(iterations=120),
        NuclearNormCompleter(iterations=150),
    ],
    ids=["als", "svt", "nuc"],
)
def test_completers_reconstruct_low_rank_matrices(completer):
    truth = low_rank_matrix()
    mask = mask_for(truth.shape, 0.6)
    observed = np.where(mask > 0, truth, 0.0)
    completed = completer.complete(observed, mask)
    assert completed.shape == truth.shape
    holdout = mask == 0
    baseline = completion_mse(truth, np.full_like(truth, truth[mask > 0].mean()), holdout)
    assert completion_mse(truth, completed, holdout) < baseline


@pytest.mark.parametrize(
    "completer",
    [ALSCompleter(), SVTCompleter(), NuclearNormCompleter()],
    ids=["als", "svt", "nuc"],
)
def test_completers_validate_inputs(completer):
    truth = low_rank_matrix()
    with pytest.raises(CompletionError):
        completer.complete(truth, np.zeros_like(truth))
    with pytest.raises(CompletionError):
        completer.complete(truth, np.ones((2, 2)))


def test_als_completer_uses_censored_bounds():
    truth = low_rank_matrix()
    mask = mask_for(truth.shape, 0.5)
    timeouts = np.zeros_like(truth)
    mask[4, 4] = 0.0
    timeouts[4, 4] = truth[4, 4] * 3
    completed = ALSCompleter(ALSConfig(rank=3, iterations=20)).complete(
        np.where(mask > 0, truth, 0.0), mask, timeouts
    )
    assert completed[4, 4] >= timeouts[4, 4] - 1e-9


def test_svt_rejects_all_zero_observations():
    observed = np.zeros((5, 5))
    mask = np.ones((5, 5))
    with pytest.raises(CompletionError):
        SVTCompleter().complete(observed, mask)


def test_completion_outputs_are_nonnegative():
    truth = low_rank_matrix()
    mask = mask_for(truth.shape, 0.3, seed=4)
    observed = np.where(mask > 0, truth, 0.0)
    for completer in (SVTCompleter(), NuclearNormCompleter()):
        assert (completer.complete(observed, mask) >= 0).all()


def test_completion_mse_and_rmse():
    truth = np.array([[1.0, 2.0], [3.0, 4.0]])
    estimate = np.array([[1.0, 2.0], [3.0, 6.0]])
    assert completion_mse(truth, estimate) == pytest.approx(1.0)
    assert completion_rmse(truth, estimate) == pytest.approx(1.0)
    holdout = np.array([[False, False], [False, True]])
    assert completion_mse(truth, estimate, holdout) == pytest.approx(4.0)


def test_completion_mse_validation():
    truth = np.ones((2, 2))
    with pytest.raises(CompletionError):
        completion_mse(truth, np.ones((3, 3)))
    with pytest.raises(CompletionError):
        completion_mse(truth, truth, np.zeros((2, 2), dtype=bool))
    with pytest.raises(CompletionError):
        completion_mse(truth, truth, np.zeros((3, 3), dtype=bool))


def test_invalid_iteration_counts_rejected():
    with pytest.raises(CompletionError):
        SVTCompleter(iterations=0)
    with pytest.raises(CompletionError):
        NuclearNormCompleter(iterations=0)


def test_als_is_fastest_of_the_three_on_job_sized_matrices():
    """The qualitative claim behind Figure 17: ALS has the least overhead."""
    import time

    truth = low_rank_matrix(n=113, k=49, rank=5, seed=2)
    mask = mask_for(truth.shape, 0.2, seed=2)
    observed = np.where(mask > 0, truth, 0.0)
    timings = {}
    for name, completer in (
        ("als", ALSCompleter(ALSConfig(rank=5, iterations=15))),
        ("nuc", NuclearNormCompleter(iterations=200)),
    ):
        start = time.perf_counter()
        completer.complete(observed, mask)
        timings[name] = time.perf_counter() - start
    assert timings["als"] < timings["nuc"]
