"""Tests for plan nodes and operators."""

import pytest

from repro.db.operators import (
    JoinOperator,
    PlanNode,
    ScanOperator,
    join_node,
    scan_node,
)
from repro.errors import PlanError


def small_plan():
    left = scan_node(ScanOperator.SEQ_SCAN, "a", "t1", 100, 10)
    right = scan_node(ScanOperator.INDEX_SCAN, "b", "t2", 50, 5)
    return join_node(JoinOperator.HASH_JOIN, left, right, 80, 20)


def test_unknown_operator_rejected():
    with pytest.raises(PlanError):
        PlanNode(operator="sort")


def test_scan_node_requires_alias_and_table():
    with pytest.raises(PlanError):
        PlanNode(operator=ScanOperator.SEQ_SCAN.value)


def test_scan_node_must_be_leaf():
    child = scan_node(ScanOperator.SEQ_SCAN, "a", "t1")
    with pytest.raises(PlanError):
        PlanNode(
            operator=ScanOperator.SEQ_SCAN.value,
            alias="b",
            table="t2",
            children=[child],
        )


def test_join_node_requires_two_children():
    child = scan_node(ScanOperator.SEQ_SCAN, "a", "t1")
    with pytest.raises(PlanError):
        PlanNode(operator=JoinOperator.HASH_JOIN.value, children=[child])


def test_plan_classification_and_traversal():
    plan = small_plan()
    assert plan.is_join and not plan.is_scan
    assert plan.num_nodes == 3
    assert plan.depth == 2
    assert len(plan.leaves()) == 2
    assert plan.aliases() == ("a", "b")


def test_operator_counts():
    counts = small_plan().operator_counts()
    assert counts["hash_join"] == 1
    assert counts["seq_scan"] == 1
    assert counts["index_scan"] == 1


def test_to_text_mentions_tables_and_operators():
    text = small_plan().to_text()
    assert "hash_join" in text
    assert "t1 a" in text
    assert "t2 b" in text


def test_signature_distinguishes_structure():
    a = small_plan()
    left = scan_node(ScanOperator.SEQ_SCAN, "a", "t1")
    right = scan_node(ScanOperator.INDEX_SCAN, "b", "t2")
    b = join_node(JoinOperator.MERGE_JOIN, left, right)
    assert a.signature() != b.signature()
    assert a.signature() == small_plan().signature()
