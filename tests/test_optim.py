"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.errors import NeuralNetworkError
from repro.nn.autograd import parameter
from repro.nn.optim import SGD, Adam


def quadratic_loss(param):
    return ((param - 3.0) * (param - 3.0)).sum()


@pytest.mark.parametrize("optimizer_cls,kwargs", [(SGD, {"lr": 0.1}), (Adam, {"lr": 0.2})])
def test_optimizers_minimise_a_quadratic(optimizer_cls, kwargs):
    param = parameter(np.zeros(4))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(200):
        optimizer.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
    assert np.allclose(param.data, 3.0, atol=0.05)


def test_sgd_momentum_accelerates():
    slow = parameter(np.zeros(1))
    fast = parameter(np.zeros(1))
    plain = SGD([slow], lr=0.01)
    momentum = SGD([fast], lr=0.01, momentum=0.9)
    for _ in range(50):
        for param, optimizer in ((slow, plain), (fast, momentum)):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
    assert abs(fast.data[0] - 3.0) < abs(slow.data[0] - 3.0)


def test_step_skips_parameters_without_gradients():
    param = parameter(np.ones(2))
    optimizer = Adam([param], lr=0.1)
    optimizer.step()  # no gradient accumulated yet
    assert np.allclose(param.data, 1.0)


def test_adam_handles_grown_embedding_tables():
    param = parameter(np.ones((2, 3)))
    optimizer = Adam([param], lr=0.1)
    quadratic_loss(param).backward()
    optimizer.step()
    # Simulate an embedding table growing after the optimizer was created.
    param.data = np.vstack([param.data, np.ones((1, 3))])
    param.zero_grad()
    quadratic_loss(param).backward()
    optimizer.step()
    assert param.data.shape == (3, 3)


def test_optimizer_validation():
    with pytest.raises(NeuralNetworkError):
        SGD([], lr=0.1)
    param = parameter(np.ones(1))
    with pytest.raises(NeuralNetworkError):
        SGD([param], lr=0.0)
    with pytest.raises(NeuralNetworkError):
        SGD([param], lr=0.1, momentum=1.5)
    with pytest.raises(NeuralNetworkError):
        Adam([param], lr=-1.0)
    with pytest.raises(NeuralNetworkError):
        Adam([param], betas=(1.5, 0.9))


def test_optimizer_ignores_non_trainable_tensors():
    from repro.nn.autograd import Tensor

    trainable = parameter(np.ones(1))
    constant = Tensor(np.ones(1))
    optimizer = SGD([trainable, constant], lr=0.1)
    assert len(optimizer.parameters) == 1
