"""Tests for the hint-aware plan enumerator."""

import pytest

from repro.db.datagen import make_catalog
from repro.db.hints import HintSet, all_hint_sets, default_hint_set
from repro.db.optimizer import PlanEnumerator
from repro.db.query import QueryGenerator


@pytest.fixture(scope="module")
def setup():
    catalog = make_catalog("toy", seed=0)
    enumerator = PlanEnumerator(catalog)
    queries = QueryGenerator(catalog, seed=3, min_relations=2, max_relations=5).generate_many(10)
    return catalog, enumerator, queries


def test_plan_covers_all_relations(setup):
    _, enumerator, queries = setup
    for query in queries:
        plan = enumerator.optimize(query, default_hint_set())
        assert sorted(plan.aliases()) == sorted(query.aliases)


def test_plan_is_binary_tree_of_known_operators(setup):
    _, enumerator, queries = setup
    plan = enumerator.optimize(queries[0], default_hint_set())
    for node in plan.iter_nodes():
        assert node.is_scan or len(node.children) == 2


def test_plans_are_annotated_with_costs_and_truth(setup):
    _, enumerator, queries = setup
    plan = enumerator.optimize(queries[0], default_hint_set())
    for node in plan.iter_nodes():
        assert node.estimated_cost > 0
        assert node.estimated_rows >= 1
        assert node.true_cost > 0
        assert node.true_rows >= 1


def test_hint_sets_restrict_operators(setup):
    _, enumerator, queries = setup
    only_hash = HintSet(enable_mergejoin=False, enable_nestloop=False)
    only_nl = HintSet(enable_hashjoin=False, enable_mergejoin=False)
    for query in queries[:5]:
        plan_hash = enumerator.optimize(query, only_hash)
        plan_nl = enumerator.optimize(query, only_nl)
        for node in plan_hash.iter_nodes():
            if node.is_join:
                assert node.operator == "hash_join"
        for node in plan_nl.iter_nodes():
            if node.is_join:
                assert node.operator == "nested_loop"


def test_scan_hints_respected_when_index_exists(setup):
    catalog, enumerator, queries = setup
    seq_only = HintSet(enable_indexscan=False, enable_indexonlyscan=False)
    for query in queries[:5]:
        plan = enumerator.optimize(query, seq_only)
        for leaf in plan.leaves():
            assert leaf.operator == "seq_scan"


def test_default_plan_is_deterministic(setup):
    _, enumerator, queries = setup
    a = enumerator.optimize(queries[0], default_hint_set())
    b = enumerator.optimize(queries[0], default_hint_set())
    assert a.signature() == b.signature()


def test_different_hints_can_change_the_plan(setup):
    _, enumerator, queries = setup
    signatures = set()
    for hint in all_hint_sets()[:10]:
        plan = enumerator.optimize(queries[2], hint)
        signatures.add(plan.signature())
    assert len(signatures) > 1, "hints should produce plan diversity"


def test_default_hint_has_lowest_estimated_cost_among_restrictions(setup):
    # The default hint set is a superset of every other hint set's search
    # space, so its best estimated cost can never be worse.
    _, enumerator, queries = setup
    query = queries[1]
    default_cost = sum(
        n.estimated_cost for n in enumerator.optimize(query, default_hint_set()).iter_nodes()
    )
    for hint in all_hint_sets()[1:15]:
        restricted_cost = sum(
            n.estimated_cost for n in enumerator.optimize(query, hint).iter_nodes()
        )
        assert default_cost <= restricted_cost * (1 + 1e-9)


def test_greedy_fallback_for_many_relations(setup):
    catalog, _, _ = setup
    enumerator = PlanEnumerator(catalog, dp_threshold=3)
    query = QueryGenerator(catalog, seed=8, min_relations=5, max_relations=6).generate("big")
    plan = enumerator.optimize(query, default_hint_set())
    assert sorted(plan.aliases()) == sorted(query.aliases)


def test_explain_returns_text(setup):
    _, enumerator, queries = setup
    text = enumerator.explain(queries[0])
    assert "scan" in text
