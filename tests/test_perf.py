"""Tests for the repro.perf harness, report format, and regression gate."""

import json

import numpy as np
import pytest

from repro.errors import PerfError
from repro.perf import (
    PerfCase,
    PerfHarness,
    as_payload,
    build_suite,
    calibration_seconds,
    compare,
    format_comparisons,
    load_report,
    write_report,
)
from repro.perf.harness import PerfResult
from repro.perf.__main__ import main as perf_main


class TestHarness:
    def test_case_measures_best_and_mean(self):
        calls = []

        def run(state):
            calls.append(state)
            return {"payload": state}

        case = PerfCase(name="toy", run=run, setup=lambda: 42, repeats=3)
        result = case.measure()
        assert calls == [42, 42, 42]
        assert result.repeats == 3
        assert result.best_seconds <= result.mean_seconds
        assert result.meta == {"payload": 42}

    def test_case_validation(self):
        with pytest.raises(PerfError):
            PerfCase(name="", run=lambda s: None)
        with pytest.raises(PerfError):
            PerfCase(name="x", run=lambda s: None, repeats=0)

    def test_harness_rejects_duplicate_names(self):
        harness = PerfHarness()
        harness.add("a", lambda s: None)
        with pytest.raises(PerfError):
            harness.add("a", lambda s: None)

    def test_harness_runs_selected_cases(self):
        harness = PerfHarness()
        harness.add("a", lambda s: None)
        harness.add("b", lambda s: None)
        results = harness.run(["b"])
        assert list(results) == ["b"]
        with pytest.raises(PerfError):
            harness.run(["nope"])

    def test_calibration_is_positive_and_repeatable_scale(self):
        value = calibration_seconds(repeats=2)
        assert value > 0


class TestReport:
    def _results(self):
        return {
            "fast": PerfResult("fast", 0.001, 0.0012, 3),
            "slow": PerfResult("slow", 0.1, 0.11, 3, meta={"n": 5}),
        }

    def test_payload_and_roundtrip(self, tmp_path):
        payload = as_payload(self._results(), calibration=0.01, scale="smoke")
        assert payload["cases"]["fast"]["normalized"] == pytest.approx(0.1)
        assert payload["cases"]["slow"]["meta"] == {"n": 5}
        path = write_report(payload, str(tmp_path / "BENCH_core.json"))
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(payload))

    def test_payload_rejects_bad_calibration(self):
        with pytest.raises(PerfError):
            as_payload(self._results(), calibration=0.0)

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(PerfError):
            load_report(str(path))

    def test_compare_flags_regressions_only_beyond_threshold(self):
        current = as_payload(
            {"a": PerfResult("a", 0.03, 0.03, 1), "b": PerfResult("b", 0.01, 0.01, 1)},
            calibration=0.01,
        )
        baseline = as_payload(
            {"a": PerfResult("a", 0.01, 0.01, 1), "b": PerfResult("b", 0.01, 0.01, 1)},
            calibration=0.01,
        )
        comparisons = {c.name: c for c in compare(current, baseline, threshold=2.0)}
        assert comparisons["a"].regressed
        assert comparisons["a"].ratio == pytest.approx(3.0)
        assert not comparisons["b"].regressed

    def test_compare_treats_new_cases_as_ok(self):
        current = as_payload({"new": PerfResult("new", 0.5, 0.5, 1)}, calibration=0.01)
        baseline = as_payload({}, calibration=0.01)
        (comparison,) = compare(current, baseline)
        assert comparison.baseline is None
        assert not comparison.regressed
        assert "new" in format_comparisons([comparison])

    def test_compare_validates_threshold(self):
        payload = as_payload({}, calibration=0.01)
        with pytest.raises(PerfError):
            compare(payload, payload, threshold=1.0)


class TestSuite:
    def test_suite_registers_the_named_hot_paths(self):
        harness = build_suite("smoke")
        assert harness.case_names == [
            "als_cold",
            "als_warm",
            "explore_200_steps",
            "tcnn_predict_full",
            "serve_batch",
            "telemetry_overhead",
            "ingress_serve",
            "adapt_drift",
            "wal_append",
            "recovery_replay",
        ]

    def test_suite_rejects_unknown_scale(self):
        with pytest.raises(PerfError):
            build_suite("galactic")

    def test_als_cases_run_and_report_iterations(self):
        harness = build_suite("smoke")
        results = harness.run(["als_cold", "als_warm"])
        assert results["als_cold"].meta["iterations"] == 50
        assert results["als_warm"].meta["iterations"] == 5
        # The warm refresh must be substantially cheaper at equal shapes.
        assert (
            results["als_warm"].best_seconds < results["als_cold"].best_seconds
        )

    def test_telemetry_case_runs_with_instrumentation_on(self):
        harness = build_suite("smoke")
        results = harness.run(["telemetry_overhead"])
        meta = results["telemetry_overhead"].meta
        assert meta["enabled"] is True
        assert meta["served"] > 0

    def test_durability_cases_run_and_report_counts(self):
        harness = build_suite("smoke")
        results = harness.run(["wal_append", "recovery_replay"])
        assert results["wal_append"].meta["records"] >= 400
        assert results["wal_append"].meta["bytes"] > 0
        # Half the history is behind the checkpoint; its segments were
        # truncated, so recovery replays only the post-checkpoint half.
        assert results["recovery_replay"].meta["replayed"] > 0
        assert results["recovery_replay"].meta["skipped"] == 0


class TestCli:
    def test_cli_writes_report_and_compares(self, tmp_path):
        out = tmp_path / "BENCH_core.json"
        code = perf_main(
            [
                "--scale", "smoke",
                "--cases", "als_cold", "als_warm",
                "--output", str(out),
            ]
        )
        assert code == 0
        payload = load_report(str(out))
        assert set(payload["cases"]) == {"als_cold", "als_warm"}

        # Against its own fresh output the gate must pass...
        code = perf_main(
            [
                "--scale", "smoke",
                "--cases", "als_cold",
                "--output", str(tmp_path / "again.json"),
                "--baseline", str(out),
            ]
        )
        assert code == 0

        # ...and fail once the baseline is artificially sped up.
        doctored = json.loads(out.read_text())
        for case in doctored["cases"].values():
            case["normalized"] /= 1000.0
        (tmp_path / "doctored.json").write_text(json.dumps(doctored))
        code = perf_main(
            [
                "--scale", "smoke",
                "--cases", "als_cold",
                "--output", str(tmp_path / "again2.json"),
                "--baseline", str(tmp_path / "doctored.json"),
            ]
        )
        assert code == 1

    def test_committed_baseline_matches_suite(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "baselines",
            "core_baseline.json",
        )
        baseline = load_report(path)
        assert set(baseline["cases"]) == set(build_suite("smoke").case_names)
        assert all(
            np.isfinite(entry["normalized"]) and entry["normalized"] > 0
            for entry in baseline["cases"].values()
        )
