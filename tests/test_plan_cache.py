"""Tests for the online plan cache and its no-regression guarantee."""

import numpy as np
import pytest

from repro.core.plan_cache import PlanCache
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ExplorationError


def make_matrix():
    matrix = WorkloadMatrix(3, 4)
    # Query 0: default 10s, a verified better hint at 4s.
    matrix.observe(0, 0, 10.0)
    matrix.observe(0, 2, 4.0)
    # Query 1: only the default observed.
    matrix.observe(1, 0, 5.0)
    # Query 2: a worse alternative observed.
    matrix.observe(2, 0, 2.0)
    matrix.observe(2, 3, 6.0)
    return matrix


def test_lookup_returns_verified_better_plan():
    cache = PlanCache(make_matrix())
    decision = cache.lookup(0)
    assert decision.hint == 2
    assert not decision.used_default
    assert decision.expected_latency == pytest.approx(4.0)


def test_lookup_falls_back_to_default_when_nothing_better():
    cache = PlanCache(make_matrix())
    assert cache.lookup(1).used_default
    assert cache.lookup(1).hint == 0
    assert cache.lookup(2).used_default
    assert cache.lookup(2).hint == 0


def test_lookup_all_and_hint_map():
    cache = PlanCache(make_matrix())
    decisions = cache.lookup_all()
    assert len(decisions) == 3
    assert cache.as_hint_map() == {0: 2, 1: 0, 2: 0}


def test_hit_rate_counts_non_default_answers():
    cache = PlanCache(make_matrix())
    cache.lookup_all()
    assert 0 < cache.hit_rate() < 1


def test_regression_margin_blocks_marginal_plans():
    matrix = WorkloadMatrix(1, 2)
    matrix.observe(0, 0, 10.0)
    matrix.observe(0, 1, 9.5)
    strict = PlanCache(matrix, regression_margin=0.5)
    assert strict.lookup(0).used_default
    relaxed = PlanCache(matrix, regression_margin=1.0)
    assert not relaxed.lookup(0).used_default


def test_no_regression_against_ground_truth():
    truth = np.array(
        [
            [10.0, 20.0, 4.0, 30.0],
            [5.0, 6.0, 7.0, 8.0],
            [2.0, 9.0, 9.0, 6.0],
        ]
    )
    cache = PlanCache(make_matrix())
    assert cache.verify_no_regression(truth)


def test_verify_no_regression_shape_check():
    cache = PlanCache(make_matrix())
    with pytest.raises(ExplorationError):
        cache.verify_no_regression(np.ones((2, 2)))


def test_constructor_validation():
    matrix = make_matrix()
    with pytest.raises(ExplorationError):
        PlanCache(matrix, default_hint=10)
    with pytest.raises(ExplorationError):
        PlanCache(matrix, regression_margin=0.0)


def test_unobserved_query_served_with_default():
    matrix = WorkloadMatrix(1, 3)
    cache = PlanCache(matrix)
    decision = cache.lookup(0)
    assert decision.used_default
    assert decision.hint == 0
    assert decision.expected_latency == float("inf")
