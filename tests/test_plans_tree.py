"""Tests for plan binarisation and flattening."""

import numpy as np
import pytest

from repro.db.operators import JoinOperator, ScanOperator, join_node, scan_node
from repro.plans.tree import (
    OPERATOR_INDEX,
    binarize_plan,
    node_feature_vector,
    plan_to_arrays,
)


def sample_plan():
    left = scan_node(ScanOperator.SEQ_SCAN, "a", "t1", estimated_rows=100, estimated_cost=50)
    right = scan_node(ScanOperator.INDEX_SCAN, "b", "t2", estimated_rows=10, estimated_cost=5)
    middle = join_node(JoinOperator.HASH_JOIN, left, right, estimated_rows=60, estimated_cost=20)
    far = scan_node(ScanOperator.SEQ_SCAN, "c", "t3", estimated_rows=5, estimated_cost=2)
    return join_node(JoinOperator.NESTED_LOOP, middle, far, estimated_rows=30, estimated_cost=8)


def test_binarize_returns_an_equivalent_copy():
    plan = sample_plan()
    copy = binarize_plan(plan)
    assert copy is not plan
    assert copy.signature() == plan.signature()
    assert copy.num_nodes == plan.num_nodes


def test_node_feature_vector_layout():
    node = scan_node(ScanOperator.SEQ_SCAN, "a", "t1", estimated_rows=99, estimated_cost=9)
    features = node_feature_vector(node)
    assert features.shape == (len(OPERATOR_INDEX) + 2,)
    assert features[OPERATOR_INDEX["seq_scan"]] == 1.0
    assert features.sum() == pytest.approx(1.0 + np.log1p(9) + np.log1p(99))


def test_plan_to_arrays_structure():
    nodes, left, right = plan_to_arrays(sample_plan())
    # 5 real nodes plus the reserved null node.
    assert nodes.shape[0] == 6
    assert left.shape == right.shape == (6,)
    # Null node is all zeros and points at itself.
    assert np.allclose(nodes[0], 0.0)
    assert left[0] == 0 and right[0] == 0
    # The root (node 1) has two children; leaves point at the null node.
    assert left[1] != 0 and right[1] != 0
    leaf_positions = [i for i in range(1, 6) if left[i] == 0 and right[i] == 0]
    assert len(leaf_positions) == 3


def test_plan_to_arrays_children_are_consistent():
    plan = sample_plan()
    nodes, left, right = plan_to_arrays(plan)
    # Node 1 is the root in pre-order; its left child's operator one-hot must
    # match the root's first child.
    root_left = int(left[1])
    first_child_operator = plan.children[0].operator
    assert nodes[root_left, OPERATOR_INDEX[first_child_operator]] == 1.0


def test_single_scan_plan():
    plan = scan_node(ScanOperator.SEQ_SCAN, "a", "t1", estimated_rows=10, estimated_cost=1)
    nodes, left, right = plan_to_arrays(plan)
    assert nodes.shape[0] == 2
    assert left[1] == 0 and right[1] == 0
