"""Tests for the exploration policies."""

import numpy as np
import pytest

from repro.config import ALSConfig
from repro.core.policies import (
    BaoCachePolicy,
    GreedyPolicy,
    LimeQOPlusPolicy,
    LimeQOPolicy,
    QOAdvisorPolicy,
    RandomPolicy,
)
from repro.core.predictors import MeanPredictor
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ExplorationError


def matrix_from(truth, observe_default=True):
    truth = np.asarray(truth, dtype=float)
    matrix = WorkloadMatrix(truth.shape[0], truth.shape[1])
    if observe_default:
        for i in range(truth.shape[0]):
            matrix.observe(i, 0, float(truth[i, 0]))
    return matrix


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def small_truth():
    rng = np.random.default_rng(3)
    q = rng.gamma(2.0, 1.0, (20, 3))
    h = rng.gamma(2.0, 1.0, (8, 3))
    return q @ h.T


def test_random_policy_selects_unknown_cells(small_truth, rng):
    matrix = matrix_from(small_truth)
    picks = RandomPolicy().select(matrix, 10, rng)
    assert len(picks) == 10
    assert len(set(picks)) == 10
    for query, hint in picks:
        assert not matrix.is_known(query, hint)


def test_random_policy_handles_exhausted_matrix(rng):
    matrix = WorkloadMatrix(2, 2)
    for i in range(2):
        for j in range(2):
            matrix.observe(i, j, 1.0)
    assert RandomPolicy().select(matrix, 5, rng) == []


def test_greedy_policy_prefers_longest_running_queries(small_truth, rng):
    matrix = matrix_from(small_truth)
    picks = GreedyPolicy().select(matrix, 5, rng)
    picked_rows = [q for q, _ in picks]
    minima = matrix.row_minima()
    worst_rows = set(np.argsort(-minima)[:5].tolist())
    assert set(picked_rows) == worst_rows


def test_qo_advisor_selects_lowest_cost_cells(small_truth, rng):
    matrix = matrix_from(small_truth)
    costs = np.full(small_truth.shape, 100.0)
    costs[3, 4] = 1.0
    costs[7, 2] = 2.0
    picks = QOAdvisorPolicy(costs).select(matrix, 2, rng)
    assert picks == [(3, 4), (7, 2)]


def test_qo_advisor_validates_cost_matrix(small_truth, rng):
    with pytest.raises(ExplorationError):
        QOAdvisorPolicy(np.ones(5))
    policy = QOAdvisorPolicy(np.ones((20, 3)))
    with pytest.raises(ExplorationError):
        policy.select(matrix_from(small_truth), 2, rng)


def test_bao_cache_selects_lowest_predicted_cells(small_truth, rng):
    matrix = matrix_from(small_truth)
    policy = BaoCachePolicy(MeanPredictor())
    picks = policy.select(matrix, 4, rng)
    assert len(picks) == 4
    assert policy.last_prediction is not None
    for query, hint in picks:
        assert not matrix.is_known(query, hint)


def test_limeqo_policy_targets_predicted_improvements(small_truth, rng):
    matrix = matrix_from(small_truth)
    # Observe a few off-default cells so ALS has signal.
    for i in range(0, 20, 4):
        matrix.observe(i, 3, float(small_truth[i, 3]))
    policy = LimeQOPolicy(als_config=ALSConfig(rank=2, iterations=8))
    picks = policy.select(matrix, 6, rng)
    assert 0 < len(picks) <= 6
    assert policy.last_prediction.shape == matrix.shape
    for query, hint in picks:
        assert not matrix.is_known(query, hint)
    assert policy.overhead_seconds > 0


def test_limeqo_policy_random_fill_can_be_disabled(rng):
    # Construct a matrix where no improvement is predicted: single column.
    truth = np.ones((5, 2))
    matrix = matrix_from(truth)
    for i in range(5):
        matrix.observe(i, 1, 1.0)
    policy = LimeQOPolicy(als_config=ALSConfig(rank=1, iterations=3))
    assert policy.select(matrix, 3, rng) == []


def test_limeqo_improvement_ratios_exposed(small_truth):
    matrix = matrix_from(small_truth)
    policy = LimeQOPolicy(als_config=ALSConfig(rank=2, iterations=5))
    ratios = policy.improvement_ratios(matrix)
    assert ratios.shape == (20,)


def test_limeqo_plus_is_limeqo_with_a_different_predictor(small_truth, rng):
    matrix = matrix_from(small_truth)
    policy = LimeQOPlusPolicy(predictor=MeanPredictor())
    picks = policy.select(matrix, 3, rng)
    assert policy.name == "limeqo+"
    for query, hint in picks:
        assert not matrix.is_known(query, hint)


def test_policies_never_pick_duplicate_cells_within_a_batch(small_truth, rng):
    matrix = matrix_from(small_truth)
    for policy in (RandomPolicy(), GreedyPolicy(), LimeQOPolicy(als_config=ALSConfig(rank=2, iterations=5))):
        picks = policy.select(matrix, 8, np.random.default_rng(1))
        assert len(picks) == len(set(picks))
