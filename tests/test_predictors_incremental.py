"""Tests for the warm-started incremental ALS predictor."""

import numpy as np
import pytest

from repro.config import ALSConfig, ExplorationConfig
from repro.core.explorer import MatrixOracle, OfflineExplorer
from repro.core.policies import LimeQOPolicy, RandomPolicy
from repro.core.predictors import ALSPredictor
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ExplorationError


def make_matrix(n=20, k=8, fill=0.4, seed=0):
    rng = np.random.default_rng(seed)
    truth = rng.gamma(2.0, 1.0, (n, 3)) @ rng.gamma(2.0, 1.0, (k, 3)).T
    matrix = WorkloadMatrix(n, k)
    matrix.observe_batch(np.arange(n), np.zeros(n, dtype=np.int64), truth[:, 0])
    extra = rng.random((n, k)) < fill
    extra[:, 0] = False
    rows, cols = np.nonzero(extra)
    matrix.observe_batch(rows, cols, truth[rows, cols])
    return matrix, truth


def test_first_predict_is_cold_then_warm_after_mutation():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10))
    predictor.predict(matrix)
    assert (predictor.cold_solves, predictor.warm_solves) == (1, 0)
    matrix.observe(1, 3, float(truth[1, 3]))
    predictor.predict(matrix)
    assert (predictor.cold_solves, predictor.warm_solves) == (1, 1)


def test_unchanged_matrix_returns_cached_completion_without_solving():
    matrix, _ = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10))
    first = predictor.predict(matrix)
    second = predictor.predict(matrix)
    assert predictor.cold_solves == 1 and predictor.warm_solves == 0
    np.testing.assert_array_equal(first, second)


def test_full_solve_every_bounds_drift():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(
        ALSConfig(iterations=10), refresh_iterations=2, full_solve_every=3
    )
    rng = np.random.default_rng(1)
    for _ in range(8):
        i, j = int(rng.integers(matrix.n_queries)), int(rng.integers(matrix.n_hints))
        matrix.observe(i, j, float(truth[i, j]))
        predictor.predict(matrix)
    # 8 predicts: cold, then warm refreshes with a full cold re-solve after
    # every third warm one (full_solve_every=3).
    assert predictor.cold_solves == 2
    assert predictor.warm_solves == 6


def test_warm_disabled_solves_cold_on_every_change():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10), warm_start=False)
    predictor.predict(matrix)
    matrix.observe(2, 4, float(truth[2, 4]))
    predictor.predict(matrix)
    assert predictor.cold_solves == 2 and predictor.warm_solves == 0


def test_different_matrix_object_starts_cold():
    matrix_a, _ = make_matrix(seed=0)
    matrix_b, _ = make_matrix(seed=1)
    predictor = ALSPredictor(ALSConfig(iterations=10))
    predictor.predict(matrix_a)
    predictor.predict(matrix_b)
    assert predictor.cold_solves == 2 and predictor.warm_solves == 0


def test_grown_matrix_keeps_warm_factors():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10))
    predictor.predict(matrix)
    index = matrix.add_query()
    matrix.observe(index, 0, 1.5)
    estimate = predictor.predict(matrix)
    assert estimate.shape == matrix.shape
    assert predictor.warm_solves == 1


def test_reset_forgets_factors():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10))
    predictor.predict(matrix)
    predictor.reset()
    assert predictor.factors is None
    matrix.observe(0, 2, float(truth[0, 2]))
    predictor.predict(matrix)
    assert predictor.cold_solves == 2 and predictor.warm_solves == 0


def test_warm_refresh_tracks_cold_solution():
    matrix, truth = make_matrix(n=30, k=10, fill=0.5)
    warm = ALSPredictor(ALSConfig(iterations=30), refresh_iterations=5)
    cold = ALSPredictor(ALSConfig(iterations=30), warm_start=False)
    warm.predict(matrix)
    cold.predict(matrix)
    rng = np.random.default_rng(2)
    for _ in range(5):
        i, j = int(rng.integers(matrix.n_queries)), int(rng.integers(matrix.n_hints))
        matrix.observe(i, j, float(truth[i, j]))
    warm_estimate = warm.predict(matrix)
    cold_estimate = cold.predict(matrix)
    # Observed entries are exact in both; unobserved predictions agree to a
    # few percent relative after only a handful of fill-in iterations.
    denominator = np.maximum(np.abs(cold_estimate), 1e-9)
    assert np.median(np.abs(warm_estimate - cold_estimate) / denominator) < 0.05


def test_set_incremental_validation():
    predictor = ALSPredictor(ALSConfig(iterations=5))
    with pytest.raises(ExplorationError):
        predictor.set_incremental(True, refresh_iterations=0)
    with pytest.raises(ExplorationError):
        predictor.set_incremental(True, full_solve_every=0)


def test_explorer_configures_policy_predictor_from_exploration_config():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10))
    policy = LimeQOPolicy(predictor=predictor)
    config = ExplorationConfig(
        batch_size=3,
        incremental_als=True,
        als_refresh_iterations=7,
        als_full_solve_every=4,
    )
    OfflineExplorer(matrix, policy, MatrixOracle(truth), config)
    assert predictor.warm_start is True
    assert predictor.refresh_iterations == 7
    assert predictor.full_solve_every == 4

    config_off = ExplorationConfig(batch_size=3, incremental_als=False)
    OfflineExplorer(matrix, policy, MatrixOracle(truth), config_off)
    assert predictor.warm_start is False


def test_model_free_policies_ignore_configure():
    matrix, truth = make_matrix()
    policy = RandomPolicy()
    OfflineExplorer(matrix, policy, MatrixOracle(truth), ExplorationConfig())
    assert policy.last_prediction is None


def test_configure_with_default_config_keeps_explicit_predictor_settings():
    """ExplorationConfig knobs default to None = don't clobber the predictor."""
    matrix, truth = make_matrix()
    predictor = ALSPredictor(
        ALSConfig(iterations=10), warm_start=False, refresh_iterations=3,
        full_solve_every=7,
    )
    policy = LimeQOPolicy(predictor=predictor)
    OfflineExplorer(matrix, policy, MatrixOracle(truth), ExplorationConfig())
    assert predictor.warm_start is False
    assert predictor.refresh_iterations == 3
    assert predictor.full_solve_every == 7


def test_configure_partial_override_keeps_unset_knobs():
    matrix, truth = make_matrix()
    predictor = ALSPredictor(ALSConfig(iterations=10), refresh_iterations=3)
    policy = LimeQOPolicy(predictor=predictor)
    config = ExplorationConfig(als_full_solve_every=42)
    OfflineExplorer(matrix, policy, MatrixOracle(truth), config)
    assert predictor.warm_start is True
    assert predictor.refresh_iterations == 3
    assert predictor.full_solve_every == 42
