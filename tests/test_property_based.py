"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import ALSConfig
from repro.core.als import censored_als
from repro.core.plan_cache import PlanCache
from repro.core.scoring import select_top_m
from repro.core.workload_matrix import WorkloadMatrix
from repro.db.hints import all_hint_sets
from repro.nn.autograd import parameter

latencies = st.floats(min_value=0.001, max_value=1e4, allow_nan=False, allow_infinity=False)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    k=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_workload_matrix_row_min_is_min_of_observed(n, k, data):
    matrix = WorkloadMatrix(n, k)
    observed = {}
    cells = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, k - 1), latencies
            ),
            max_size=20,
        )
    )
    for i, j, value in cells:
        matrix.observe(i, j, value)
        observed[(i, j)] = value
    for i in range(n):
        row_values = [v for (qi, _), v in observed.items() if qi == i]
        if row_values:
            assert matrix.row_min(i) == min(row_values)
        else:
            assert matrix.row_min(i) == float("inf")
    # Workload latency is the sum of row minima.  numpy's pairwise
    # summation and Python's sequential sum can differ in the last ulp,
    # so the comparison is exact only up to float associativity.
    expected = sum(
        min([v for (qi, _), v in observed.items() if qi == i], default=float("inf"))
        for i in range(n)
    )
    if np.isinf(expected):
        assert matrix.workload_latency() == expected
    else:
        assert matrix.workload_latency() == pytest.approx(expected, rel=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    k=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_workload_matrix_exploration_time_accumulates(n, k, seed):
    rng = np.random.default_rng(seed)
    matrix = WorkloadMatrix(n, k)
    total = 0.0
    for _ in range(10):
        i, j = int(rng.integers(n)), int(rng.integers(k))
        value = float(rng.uniform(0.1, 5.0))
        if matrix.is_known(i, j):
            continue
        if rng.random() < 0.3:
            matrix.observe_censored(i, j, value)
        else:
            matrix.observe(i, j, value)
        total += value
    assert matrix.exploration_time() == np.float64(total).item() or (
        abs(matrix.exploration_time() - total) < 1e-9
    )


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=6),
    margin=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
    data=st.data(),
)
def test_plan_cache_lookup_batch_matches_per_query_lookup(n, k, margin, data):
    """Batched decisions equal scalar decisions for any observed/censored mix.

    The batched path snapshots the whole matrix once per version; the
    scalar path walks one row per call.  They must agree cell-for-cell --
    including rows with no observations, censored-only rows, and margins
    that reject the best hint.
    """
    matrix = WorkloadMatrix(n, k)
    cells = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, k - 1),
                latencies,
                st.booleans(),
            ),
            max_size=25,
        )
    )
    for i, j, value, censor in cells:
        if censor:
            matrix.observe_censored(i, j, value)
        else:
            matrix.observe(i, j, value)
    default_hint = data.draw(st.integers(0, k - 1))
    queries = data.draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=30)
    )
    batched_cache = PlanCache(
        matrix, default_hint=default_hint, regression_margin=margin
    )
    scalar_cache = PlanCache(
        matrix, default_hint=default_hint, regression_margin=margin
    )
    batched = batched_cache.lookup_batch(queries)
    assert batched == [scalar_cache.lookup(q) for q in queries]
    # The hit-rate accounting matches the scalar path's too.
    assert batched_cache.hit_rate() == scalar_cache.hit_rate()


@settings(max_examples=15, deadline=None)
@given(
    rank=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
    fill=st.floats(min_value=0.3, max_value=1.0),
)
def test_censored_als_reproduces_observed_entries_and_stays_finite(rank, seed, fill):
    rng = np.random.default_rng(seed)
    truth = rng.gamma(2.0, 1.0, (12, 3)) @ rng.gamma(2.0, 1.0, (7, 3)).T
    mask = (rng.random(truth.shape) < fill).astype(float)
    mask[:, 0] = 1.0
    result = censored_als(
        np.where(mask > 0, truth, 0.0), mask,
        config=ALSConfig(rank=rank, iterations=8, seed=seed),
    )
    assert np.isfinite(result.completed).all()
    assert (result.completed >= -1e-9).all()
    observed = mask > 0
    assert np.allclose(result.completed[observed], truth[observed])


@settings(max_examples=25, deadline=None)
@given(
    scores=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=30),
    m=st.integers(min_value=1, max_value=10),
)
def test_select_top_m_returns_highest_positive_scores(scores, m):
    candidates = [(i, 0) for i in range(len(scores))]
    picked = select_top_m(scores, candidates, m)
    assert len(picked) <= m
    picked_scores = [scores[c[0]] for c in picked]
    assert all(s > 0 for s in picked_scores)
    unpicked_positive = [
        s for i, s in enumerate(scores) if s > 0 and (i, 0) not in picked
    ]
    if picked_scores and unpicked_positive:
        assert min(picked_scores) >= max(unpicked_positive) - 1e-12


def test_hint_space_is_exactly_the_valid_combinations():
    hints = all_hint_sets()
    assert len(hints) == 49
    for hint in hints:
        joins = (hint.enable_hashjoin, hint.enable_mergejoin, hint.enable_nestloop)
        scans = (hint.enable_indexscan, hint.enable_seqscan, hint.enable_indexonlyscan)
        assert any(joins) and any(scans)


@settings(max_examples=20, deadline=None)
@given(
    values=arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)),
)
def test_autograd_sum_gradient_is_ones(values):
    x = parameter(values.copy())
    x.sum().backward()
    assert np.allclose(x.grad, np.ones_like(values))


@settings(max_examples=20, deadline=None)
@given(
    a=arrays(np.float64, (2, 3), elements=st.floats(-3, 3, allow_nan=False)),
    b=arrays(np.float64, (2, 3), elements=st.floats(-3, 3, allow_nan=False)),
)
def test_autograd_product_rule(a, b):
    ta, tb = parameter(a.copy()), parameter(b.copy())
    (ta * tb).sum().backward()
    assert np.allclose(ta.grad, b)
    assert np.allclose(tb.grad, a)
