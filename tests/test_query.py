"""Tests for queries and the query generator."""

import pytest

from repro.db.datagen import make_catalog
from repro.db.query import JoinEdge, Predicate, Query, QueryGenerator
from repro.errors import QueryError


def simple_query(is_etl=False):
    return Query(
        name="q",
        relations={"a": "t1", "b": "t2"},
        joins=[JoinEdge("a", "id", "b", "id")],
        predicates=[Predicate("a", "c1", "=", 0.1)],
        is_etl=is_etl,
    )


def test_query_requires_relations():
    with pytest.raises(QueryError):
        Query(name="empty", relations={})


def test_join_must_reference_known_aliases():
    with pytest.raises(QueryError):
        Query(
            name="bad",
            relations={"a": "t1"},
            joins=[JoinEdge("a", "id", "z", "id")],
        )


def test_predicate_must_reference_known_alias():
    with pytest.raises(QueryError):
        Query(
            name="bad",
            relations={"a": "t1"},
            predicates=[Predicate("z", "c1", "=", 0.1)],
        )


def test_predicate_selectivity_bounds():
    with pytest.raises(QueryError):
        Predicate("a", "c", "=", 0.0)
    with pytest.raises(QueryError):
        Predicate("a", "c", "=", 1.5)


def test_join_edge_other_and_involves():
    edge = JoinEdge("a", "id", "b", "id")
    assert edge.involves("a") and edge.involves("b")
    assert edge.other("a") == "b"
    assert edge.other("b") == "a"
    with pytest.raises(QueryError):
        edge.other("c")


def test_query_structure_helpers():
    query = simple_query()
    assert query.num_relations == 2
    assert query.aliases == ["a", "b"]
    assert query.table_for("a") == "t1"
    assert query.predicates_for("a")[0].column == "c1"
    assert query.predicates_for("b") == []
    assert query.filter_selectivity("a") == pytest.approx(0.1)
    assert query.filter_selectivity("b") == pytest.approx(1.0)
    assert query.is_connected()


def test_joins_between_identifies_crossing_edges():
    query = simple_query()
    edges = query.joins_between(["a"], ["b"])
    assert len(edges) == 1
    assert query.joins_between(["a"], ["a"]) == []


def test_to_sql_contains_relations_and_conditions():
    sql = simple_query().to_sql()
    assert "t1 AS a" in sql and "t2 AS b" in sql
    assert "a.id = b.id" in sql
    assert "a.c1 = ?" in sql


def test_etl_query_rendering_and_flag():
    sql = simple_query(is_etl=True).to_sql()
    assert "COPY" in sql
    assert simple_query(is_etl=True).signature() != simple_query().signature()


def test_signature_is_stable_and_hashable():
    assert simple_query().signature() == simple_query().signature()
    hash(simple_query().signature())


def test_generator_produces_connected_queries():
    catalog = make_catalog("toy", seed=0)
    generator = QueryGenerator(catalog, seed=1, min_relations=2, max_relations=5)
    queries = generator.generate_many(20)
    assert len(queries) == 20
    for query in queries:
        assert 2 <= query.num_relations <= 5
        assert query.is_connected()
        for alias, table in query.relations.items():
            assert catalog.has_table(table)


def test_generator_is_reproducible():
    catalog = make_catalog("toy", seed=0)
    a = QueryGenerator(catalog, seed=9).generate_many(5)
    b = QueryGenerator(catalog, seed=9).generate_many(5)
    assert [q.signature() for q in a] == [q.signature() for q in b]


def test_generator_rejects_bad_relation_range():
    catalog = make_catalog("toy", seed=0)
    with pytest.raises(QueryError):
        QueryGenerator(catalog, min_relations=5, max_relations=2)
