"""Tests for the declarative traffic/scenario engine (repro.scenarios)."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    ScenarioEvent,
    ScenarioPhase,
    ScenarioRunner,
    ScenarioSpec,
    TenantSpec,
    TenantWorld,
    drift_benchmark_scenarios,
    kill_shard_mid_drift,
    restart_during_flash_crowd,
    standard_scenarios,
    tenant_churn,
)


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        seed=1,
        tenants=(TenantSpec(name="a", n_queries=30, n_hints=6),),
        phases=(
            ScenarioPhase(name="steady", ticks=4, batch_size=32),
            ScenarioPhase(name="after", ticks=4, batch_size=32),
        ),
        events=(
            ScenarioEvent(
                tick=4,
                action="data_drift",
                tenant="a",
                params={"changed_fraction": 0.3, "growth_factor": 1.2},
            ),
        ),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# -- spec validation ---------------------------------------------------------------
def test_spec_validation_errors():
    with pytest.raises(ScenarioError):
        TenantSpec(name="bad/name")
    with pytest.raises(ScenarioError):
        TenantSpec(name="a", initial_fraction=0.0)
    with pytest.raises(ScenarioError):
        ScenarioPhase(name="p", ticks=0)
    with pytest.raises(ScenarioError):
        ScenarioPhase(name="p", ticks=1, diurnal_amplitude=1.5)
    with pytest.raises(ScenarioError):
        ScenarioEvent(tick=0, action="warp_reality", tenant="a")
    with pytest.raises(ScenarioError):
        ScenarioEvent(tick=0, action="tenant_join")  # needs a tenant_spec
    with pytest.raises(ScenarioError):
        ScenarioEvent(tick=0, action="data_drift")  # needs a tenant
    with pytest.raises(ScenarioError):
        tiny_spec(events=(ScenarioEvent(tick=99, action="data_drift", tenant="a"),))
    with pytest.raises(ScenarioError):
        tiny_spec(events=(ScenarioEvent(tick=1, action="data_drift", tenant="ghost"),))
    with pytest.raises(ScenarioError):
        tiny_spec(tenants=(TenantSpec(name="a"), TenantSpec(name="a")))
    with pytest.raises(ScenarioError):
        tiny_spec(seed=-1)
    with pytest.raises(ScenarioError):
        TenantSpec(name="a", seed=-3)


def test_spec_timeline_helpers():
    spec = tiny_spec()
    assert spec.total_ticks == 8
    phase, start = spec.phase_at(5)
    assert phase.name == "after" and start == 4
    assert [e.action for e in spec.events_at(4)] == ["data_drift"]
    assert spec.first_disturbance_tick() == 4
    calm = tiny_spec(events=())
    assert calm.first_disturbance_tick() is None
    drifting = tiny_spec(
        events=(),
        phases=(
            ScenarioPhase(name="p1", ticks=3),
            ScenarioPhase(
                name="p2",
                ticks=3,
                drift_per_tick={"changed_fraction": 0.02, "growth_factor": 1.01},
            ),
        ),
    )
    assert drifting.first_disturbance_tick() == 3


def test_runner_rejects_bad_targets():
    with pytest.raises(ScenarioError):
        ScenarioRunner(tiny_spec(), target="mainframe")
    with pytest.raises(ScenarioError):
        ScenarioRunner(tenant_churn(), target="service")  # add_shard needs cluster
    with pytest.raises(ScenarioError):
        ScenarioRunner(tiny_spec(), bootstrap_coverage=1.5)


# -- chaos events (kill_shard / restart_shard) -------------------------------------
def test_chaos_event_validation():
    with pytest.raises(ScenarioError):
        ScenarioEvent(tick=0, action="kill_shard", params={"shard": -1})
    with pytest.raises(ScenarioError):
        ScenarioEvent(tick=0, action="kill_shard", params={"shard": 1.5})
    # No tenant needed; the shard param defaults to 0.
    assert ScenarioEvent(tick=0, action="kill_shard").params.get("shard") is None
    # Restart before any kill of that shard is rejected at spec time.
    with pytest.raises(ScenarioError):
        tiny_spec(
            events=(
                ScenarioEvent(tick=2, action="restart_shard", params={"shard": 0}),
            )
        )
    # Double-kill without an intervening restart is rejected.
    with pytest.raises(ScenarioError):
        tiny_spec(
            events=(
                ScenarioEvent(tick=1, action="kill_shard", params={"shard": 0}),
                ScenarioEvent(tick=2, action="kill_shard", params={"shard": 0}),
            )
        )
    # A rebalance during an outage is rejected.
    with pytest.raises(ScenarioError):
        tiny_spec(
            events=(
                ScenarioEvent(tick=1, action="kill_shard", params={"shard": 0}),
                ScenarioEvent(tick=2, action="add_shard"),
            )
        )
    # A well-ordered kill/restart pair passes and flags cluster-only.
    spec = tiny_spec(
        events=(
            ScenarioEvent(tick=1, action="kill_shard", params={"shard": 0}),
            ScenarioEvent(tick=3, action="restart_shard", params={"shard": 0}),
        )
    )
    assert spec.uses_cluster_actions()
    with pytest.raises(ScenarioError):
        ScenarioRunner(spec, target="service")  # chaos needs a cluster


def test_chaos_scenarios_run_and_replay_deterministically():
    spec = kill_shard_mid_drift(seed=0, n_queries=24, batch_size=32)
    runner = ScenarioRunner(spec, target="cluster", adaptive=True, n_shards=2)
    trace = runner.run()
    assert len(trace.ticks) == spec.total_ticks
    assert (trace.arrivals > 0).all()  # every tick answered, outage included
    replay = ScenarioRunner(
        spec, target="cluster", adaptive=True, n_shards=2
    ).run()
    assert trace.decisions_blob() == replay.decisions_blob()


def test_restart_during_flash_crowd_spec_shape():
    spec = restart_during_flash_crowd(seed=3)
    actions = [e.action for e in sorted(spec.events, key=lambda e: e.tick)]
    assert actions == ["kill_shard", "data_drift", "restart_shard"]
    assert spec.uses_cluster_actions()


# -- world ------------------------------------------------------------------------
def test_tenant_world_mutations():
    world = TenantWorld(
        TenantSpec(name="a", n_queries=20, n_hints=6, initial_fraction=0.7), seed=0
    )
    assert world.visible == 14 and world.n_rows == 20
    before = world.latencies.copy()
    rng = np.random.default_rng(0)
    changed = world.apply_drift(0.3, 1.1, rng)
    assert changed == 6
    assert not np.allclose(world.latencies, before)

    world.activate_rest()  # rows may only be appended once fully visible
    etl_names = world.add_etl_rows(3, latency=100.0, jitter=0.01, rng=rng)
    assert world.n_rows == 23 and world.visible == 23
    etl_rows = world.latencies[[world.row_of(n) for n in etl_names]]
    assert np.all(etl_rows.argmin(axis=1) == 0)  # incompressible

    new_names = world.add_template_rows(2, rng)
    assert world.n_rows == 25
    assert all(world.row_of(n) >= 23 for n in new_names)

    # activate_rest is a no-op once everything is visible.
    assert world.activate_rest() == []
    with pytest.raises(ScenarioError):
        world.row_of("nope")


def test_spec_rejects_row_adds_behind_a_held_back_split():
    """Appending rows while a 70/30 split is still held back would expose
    never-registered rows to traffic; the spec rejects it at definition."""
    partial = TenantSpec(name="a", n_queries=30, n_hints=6, initial_fraction=0.7)
    phases = (ScenarioPhase(name="p", ticks=8, batch_size=32),)
    with pytest.raises(ScenarioError):
        ScenarioSpec(
            name="bad",
            seed=0,
            tenants=(partial,),
            phases=phases,
            events=(
                ScenarioEvent(
                    tick=2, action="etl_flood", tenant="a", params={"count": 2}
                ),
            ),
        )
    # Ordered after activate_rest the same events are fine — and runnable.
    spec = ScenarioSpec(
        name="good",
        seed=0,
        tenants=(partial,),
        phases=phases,
        events=(
            ScenarioEvent(tick=2, action="activate_rest", tenant="a"),
            ScenarioEvent(
                tick=4, action="new_templates", tenant="a", params={"count": 2}
            ),
        ),
    )
    trace = ScenarioRunner(spec, adaptive=False).run()
    assert len(trace.ticks) == 8


def test_world_refuses_row_adds_behind_held_back_split():
    world = TenantWorld(
        TenantSpec(name="a", n_queries=10, n_hints=4, initial_fraction=0.5), seed=0
    )
    rng = np.random.default_rng(0)
    with pytest.raises(ScenarioError):
        world.add_etl_rows(2, latency=10.0, jitter=0.01, rng=rng)
    world.activate_rest()
    assert len(world.add_etl_rows(2, latency=10.0, jitter=0.01, rng=rng)) == 2


def test_world_activation_order_is_registration_order():
    world = TenantWorld(
        TenantSpec(name="a", n_queries=10, n_hints=4, initial_fraction=0.5), seed=0
    )
    newly = world.activate_rest()
    assert newly == [f"q{i}" for i in range(5, 10)]
    assert world.visible == 10


# -- runner determinism --------------------------------------------------------------
def test_replay_determinism_static_and_adaptive():
    spec = tiny_spec()
    for adaptive in (False, True):
        a = ScenarioRunner(spec, adaptive=adaptive).run()
        b = ScenarioRunner(spec, adaptive=adaptive).run()
        assert a.decisions_blob() == b.decisions_blob()
        assert np.array_equal(a.served, b.served)
    # A different seed produces a different trace.
    other = ScenarioRunner(tiny_spec(seed=2), adaptive=True).run()
    baseline = ScenarioRunner(spec, adaptive=True).run()
    assert other.decisions_blob() != baseline.decisions_blob()


def test_static_and_adaptive_share_traffic_and_ground_truth():
    spec = tiny_spec()
    static = ScenarioRunner(spec, adaptive=False).run()
    adaptive = ScenarioRunner(spec, adaptive=True).run()
    # Same arrivals, same default/optimal reference latencies -- only the
    # served decisions (and thus served latency) may differ.
    assert np.array_equal(static.arrivals, adaptive.arrivals)
    assert np.allclose(static.default, adaptive.default)
    assert np.allclose(static.optimal, adaptive.optimal)


def test_trace_series_and_summary():
    trace = ScenarioRunner(tiny_spec(), adaptive=False).run()
    assert len(trace.ticks) == 8
    assert trace.served.shape == (8,)
    improvement = trace.improvement()
    assert np.all(improvement <= 1.0)
    summary = trace.summary()
    assert summary["arrivals"] == trace.arrivals.sum()
    assert summary["served_latency"] == pytest.approx(trace.served.sum())
    assert trace.adaptive_report is None


def test_adaptive_run_reports_and_improves():
    spec = tiny_spec(
        phases=(
            ScenarioPhase(name="steady", ticks=4, batch_size=64),
            ScenarioPhase(name="after", ticks=10, batch_size=64),
        ),
        events=(
            ScenarioEvent(
                tick=4,
                action="data_drift",
                tenant="a",
                params={"changed_fraction": 0.4, "growth_factor": 1.2},
            ),
        ),
    )
    static = ScenarioRunner(spec, adaptive=False).run()
    adaptive = ScenarioRunner(spec, adaptive=True).run()
    assert adaptive.adaptive_report is not None
    assert adaptive.adaptive_report["responses"] >= 1
    assert adaptive.served[-3:].sum() < static.served[-3:].sum()


# -- events through the runner ---------------------------------------------------------
def test_workload_shift_and_new_templates_grow_serving():
    spec = ScenarioSpec(
        name="shift",
        seed=3,
        tenants=(
            TenantSpec(name="a", n_queries=30, n_hints=6, initial_fraction=0.6),
        ),
        phases=(ScenarioPhase(name="p", ticks=6, batch_size=32),),
        events=(
            ScenarioEvent(tick=2, action="activate_rest", tenant="a"),
            ScenarioEvent(
                tick=4, action="new_templates", tenant="a", params={"count": 5}
            ),
            ScenarioEvent(
                tick=4, action="etl_flood", tenant="a",
                params={"count": 3, "latency": 50.0},
            ),
        ),
    )
    runner = ScenarioRunner(spec, adaptive=False)
    trace = runner.run()
    assert len(trace.ticks) == 6
    # All 30 + 5 + 3 rows ended up registered and servable.
    decisions = np.frombuffer(trace.decisions_blob(), dtype=np.int64)
    assert decisions.max() <= 38


def test_tenant_churn_runs_on_cluster():
    spec = tenant_churn(seed=0, n_queries=30, batch_size=48)
    adaptive = ScenarioRunner(spec, target="cluster", adaptive=True, n_shards=2).run()
    replay = ScenarioRunner(spec, target="cluster", adaptive=True, n_shards=2).run()
    assert adaptive.decisions_blob() == replay.decisions_blob()
    assert adaptive.adaptive_report is not None
    # gamma joined cold and beta left: the run must still have served every tick.
    assert np.all(adaptive.arrivals > 0)


# -- the library -----------------------------------------------------------------------
def test_scenario_library_shapes():
    library = standard_scenarios(seed=0)
    assert len(library) >= 7
    for name, spec in library.items():
        assert spec.name == name
        assert spec.total_ticks >= 8
    bench = drift_benchmark_scenarios(seed=0)
    assert len(bench) >= 6
    for spec in bench.values():
        assert spec.first_disturbance_tick() is not None
        assert not spec.uses_cluster_actions()
    # Seeds propagate into the spec, so the library is replayable by value.
    assert standard_scenarios(seed=5)["etl_flood"].seed == 5
