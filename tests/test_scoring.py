"""Tests for expected-improvement scoring and top-m selection."""

import numpy as np
import pytest

from repro.core.scoring import (
    expected_improvement_ratios,
    predicted_best_hints,
    select_top_m,
)
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import ExplorationError


def matrix_with_defaults(values):
    values = np.asarray(values, dtype=float)
    matrix = WorkloadMatrix(values.shape[0], values.shape[1])
    for i in range(values.shape[0]):
        matrix.observe(i, 0, float(values[i, 0]))
    return matrix


def test_improvement_ratio_formula():
    matrix = matrix_with_defaults([[10.0, 0, 0]])
    predicted = np.array([[10.0, 2.0, 4.0]])
    ratios = expected_improvement_ratios(matrix, predicted)
    assert ratios[0] == pytest.approx((10.0 - 2.0) / 2.0)


def test_improvement_ratio_negative_when_prediction_worse():
    matrix = matrix_with_defaults([[1.0, 0, 0]])
    predicted = np.array([[5.0, 6.0, 7.0]])
    ratios = expected_improvement_ratios(matrix, predicted)
    assert ratios[0] < 0


def test_unobserved_rows_get_infinite_ratio():
    matrix = WorkloadMatrix(1, 3)
    predicted = np.array([[1.0, 2.0, 3.0]])
    assert np.isinf(expected_improvement_ratios(matrix, predicted)[0])


def test_ratio_shape_validation():
    matrix = matrix_with_defaults([[1.0, 0]])
    with pytest.raises(ExplorationError):
        expected_improvement_ratios(matrix, np.ones((2, 2)))


def test_predicted_best_hints_restricts_to_unknown():
    matrix = matrix_with_defaults([[5.0, 0.0, 0.0]])
    predicted = np.array([[0.1, 3.0, 2.0]])
    best = predicted_best_hints(matrix, predicted, only_unknown=True)
    assert best == [2]
    best_all = predicted_best_hints(matrix, predicted, only_unknown=False)
    assert best_all == [0]


def test_predicted_best_hints_returns_none_when_row_exhausted():
    matrix = WorkloadMatrix(1, 2)
    matrix.observe(0, 0, 1.0)
    matrix.observe(0, 1, 2.0)
    predicted = np.array([[1.0, 2.0]])
    assert predicted_best_hints(matrix, predicted) == [None]


def test_select_top_m_orders_by_score():
    candidates = [(0, 1), (1, 2), (2, 3)]
    scores = [0.5, 2.0, 1.0]
    assert select_top_m(scores, candidates, 2) == [(1, 2), (2, 3)]


def test_select_top_m_filters_nonpositive_scores():
    candidates = [(0, 1), (1, 2)]
    scores = [-1.0, 0.0]
    assert select_top_m(scores, candidates, 2) == []
    assert select_top_m(scores, candidates, 2, require_positive=False) == [(1, 2), (0, 1)]


def test_select_top_m_validation():
    with pytest.raises(ExplorationError):
        select_top_m([1.0], [(0, 0), (1, 1)], 1)
    with pytest.raises(ExplorationError):
        select_top_m([1.0], [(0, 0)], 0)
