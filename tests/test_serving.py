"""Tests for the batched online serving subsystem (:mod:`repro.serving`).

The two load-bearing properties:

* batched decisions equal per-query :class:`PlanCache` decisions
  cell-for-cell (same hints, same default flags, same expected latencies),
  including after incremental updates and for censored / unobserved edge
  cases;
* a warm-started incremental ALS refresh converges to (at least) the same
  masked objective as a cold solve on the updated matrix.
"""

import numpy as np
import pytest

from repro.config import ALSConfig
from repro.core.als import censored_als
from repro.core.plan_cache import CacheSnapshot, PlanCache
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import CompletionError, MatrixError, ServingError
from repro.experiments.serving import explored_matrix, serving_throughput_comparison
from repro.serving import (
    BatchedPlanCache,
    IncrementalALSRefresher,
    LatencyRecorder,
    ServingService,
)
from repro.serving.service import BatchedLatencyEstimator


def make_matrix():
    matrix = WorkloadMatrix(5, 4)
    # Query 0: default 10s, a verified better hint at 4s.
    matrix.observe(0, 0, 10.0)
    matrix.observe(0, 2, 4.0)
    # Query 1: only the default observed.
    matrix.observe(1, 0, 5.0)
    # Query 2: a worse alternative observed.
    matrix.observe(2, 0, 2.0)
    matrix.observe(2, 3, 6.0)
    # Query 3: nothing observed at all (novel query).
    # Query 4: default unobserved but an alternative verified.
    matrix.observe(4, 1, 3.0)
    # A censored entry must never be served.
    matrix.observe_censored(0, 3, 1.0)
    return matrix


def assert_batch_matches_scalar(matrix, **kwargs):
    scalar = PlanCache(matrix, **kwargs)
    batched = BatchedPlanCache(matrix, **kwargs)
    decisions = batched.decide_all()
    expected = scalar.lookup_all()
    assert decisions.hints.tolist() == [d.hint for d in expected]
    assert decisions.used_default.tolist() == [d.used_default for d in expected]
    np.testing.assert_allclose(
        decisions.expected_latency, [d.expected_latency for d in expected]
    )
    # Materialised scalar objects are equal too (dataclass equality).
    assert decisions.to_decisions() == expected


class TestBatchedEqualsScalar:
    def test_cell_for_cell_on_handcrafted_matrix(self):
        assert_batch_matches_scalar(make_matrix())

    @pytest.mark.parametrize("margin", [0.5, 0.9, 1.0, 2.0])
    def test_cell_for_cell_across_margins(self, margin):
        assert_batch_matches_scalar(make_matrix(), regression_margin=margin)

    def test_cell_for_cell_nonzero_default_hint(self):
        assert_batch_matches_scalar(make_matrix(), default_hint=2)

    def test_cell_for_cell_on_partially_observed_workload(
        self, partially_observed_matrix
    ):
        assert_batch_matches_scalar(partially_observed_matrix)
        assert_batch_matches_scalar(
            partially_observed_matrix, regression_margin=0.8
        )

    def test_lookup_batch_matches_lookup(self, partially_observed_matrix):
        cache = PlanCache(partially_observed_matrix)
        queries = np.arange(partially_observed_matrix.n_queries)
        batched = cache.lookup_batch(queries)
        fresh = PlanCache(partially_observed_matrix)
        assert batched == [fresh.lookup(int(q)) for q in queries]
        # Hit-rate accounting matches the scalar path's.
        assert cache.hit_rate() == pytest.approx(fresh.hit_rate())

    def test_arbitrary_arrival_order_and_repeats(self):
        matrix = make_matrix()
        batched = BatchedPlanCache(matrix)
        scalar = PlanCache(matrix)
        arrivals = np.array([2, 0, 0, 4, 3, 1, 0])
        decisions = batched.decide(arrivals)
        assert decisions.hints.tolist() == [
            scalar.lookup(int(q)).hint for q in arrivals
        ]
        assert decisions.batch_size == arrivals.size


class TestSnapshotInvalidation:
    def test_new_observation_invalidates_snapshot(self):
        matrix = make_matrix()
        batched = BatchedPlanCache(matrix)
        before = batched.decide([1])
        assert before.hints[0] == 0  # only the default observed
        matrix.observe(1, 2, 1.0)  # a verified 5x improvement appears
        after = batched.decide([1])
        assert after.hints[0] == 2
        assert after.expected_latency[0] == pytest.approx(1.0)

    def test_snapshot_reused_while_matrix_unchanged(self):
        matrix = make_matrix()
        batched = BatchedPlanCache(matrix)
        batched.decide([0])
        version = batched.snapshot_version
        batched.decide([1, 2])
        assert batched.snapshot_version == version

    def test_version_counter_tracks_mutations(self):
        matrix = WorkloadMatrix(2, 2)
        v0 = matrix.version
        matrix.observe(0, 0, 1.0)
        matrix.observe_censored(0, 1, 2.0)
        matrix.observe_batch([1], [0], [3.0])
        matrix.add_query()
        matrix.invalidate([0])
        assert matrix.version == v0 + 5

    def test_snapshot_compute_matches_cache(self):
        matrix = make_matrix()
        snap = CacheSnapshot.compute(matrix, default_hint=0, regression_margin=1.0)
        assert snap.version == matrix.version
        assert snap.decision(0).hint == 2


class TestObserveBatch:
    def test_matches_scalar_observe(self):
        a, b = WorkloadMatrix(3, 3), WorkloadMatrix(3, 3)
        queries, hints, latencies = [0, 1, 2], [1, 0, 2], [1.0, 2.0, 3.0]
        for q, h, lat in zip(queries, hints, latencies):
            a.observe(q, h, lat)
        b.observe_batch(queries, hints, latencies)
        np.testing.assert_array_equal(a.mask, b.mask)
        np.testing.assert_array_equal(a.observed_values(), b.observed_values())

    def test_clears_censoring(self):
        matrix = WorkloadMatrix(2, 2)
        matrix.observe_censored(0, 1, 4.0)
        matrix.observe_batch([0], [1], [6.0])
        assert matrix.is_observed(0, 1)
        assert not matrix.is_censored(0, 1)
        assert matrix.timeout_matrix[0, 1] == 0.0

    def test_rejects_bad_input(self):
        matrix = WorkloadMatrix(2, 2)
        with pytest.raises(MatrixError):
            matrix.observe_batch([0], [0, 1], [1.0])
        with pytest.raises(MatrixError):
            matrix.observe_batch([5], [0], [1.0])
        with pytest.raises(MatrixError):
            matrix.observe_batch([0], [0], [float("inf")])


class TestVectorizedMatrixViews:
    def test_best_hint_array_matches_best_hint(self, partially_observed_matrix):
        matrix = partially_observed_matrix
        array = matrix.best_hint_array()
        for q in range(matrix.n_queries):
            scalar = matrix.best_hint(q)
            assert (scalar if scalar is not None else -1) == array[q]

    def test_row_minima_matches_row_min(self, partially_observed_matrix):
        matrix = partially_observed_matrix
        np.testing.assert_allclose(
            matrix.row_minima(),
            [matrix.row_min(q) for q in range(matrix.n_queries)],
        )

    def test_unobserved_row_yields_minus_one_and_inf(self):
        matrix = make_matrix()
        assert matrix.best_hint_array()[3] == -1
        assert matrix.row_minima()[3] == np.inf


class TestIncrementalALS:
    def test_warm_refresh_converges_to_cold_objective(self, tiny_workload):
        matrix = explored_matrix(tiny_workload, observed_fraction=0.3, seed=1)
        config = ALSConfig(rank=3, iterations=15, seed=0)
        refresher = IncrementalALSRefresher(config, refresh_iterations=4)
        refresher.refresh(matrix)

        rng = np.random.default_rng(5)
        rows = rng.integers(0, matrix.n_queries, 25)
        cols = rng.integers(0, matrix.n_hints, 25)
        matrix.observe_batch(rows, cols, tiny_workload.true_latencies[rows, cols])

        warm = refresher.refresh(matrix)
        cold = censored_als(
            matrix.observed_values(), matrix.mask, matrix.timeout_matrix, config=config
        )
        assert refresher.cold_solves == 1
        assert refresher.warm_refreshes == 1
        # The warm refresh must land within 10% of the cold objective (it
        # usually lands below it: warm starts skip the cold-start transient).
        assert warm.objective_trace[-1] <= cold.objective_trace[-1] * 1.10

    def test_refresh_is_noop_when_matrix_unchanged(self, tiny_workload):
        matrix = explored_matrix(tiny_workload, observed_fraction=0.2, seed=2)
        refresher = IncrementalALSRefresher(ALSConfig(rank=3, iterations=5))
        first = refresher.refresh(matrix)
        again = refresher.refresh(matrix)
        assert again is first
        assert refresher.cold_solves == 1

    def test_warm_start_survives_workload_growth(self, tiny_workload):
        matrix = explored_matrix(tiny_workload, observed_fraction=0.3, seed=3)
        config = ALSConfig(rank=3, iterations=10, seed=0)
        refresher = IncrementalALSRefresher(config, refresh_iterations=4)
        refresher.refresh(matrix)
        new_row = matrix.add_query()
        matrix.observe(new_row, 0, 7.5)
        result = refresher.refresh(matrix)
        assert refresher.warm_refreshes == 1
        assert result.completed.shape == matrix.shape

    def test_different_matrix_object_starts_cold(self, tiny_workload):
        config = ALSConfig(rank=3, iterations=5, seed=0)
        refresher = IncrementalALSRefresher(config)
        m1 = explored_matrix(tiny_workload, observed_fraction=0.3, seed=1)
        m2 = explored_matrix(tiny_workload, observed_fraction=0.3, seed=9)
        assert m1.version == m2.version  # same mutation count, different data
        r1 = refresher.refresh(m1)
        r2 = refresher.refresh(m2)
        assert r2 is not r1
        assert refresher.cold_solves == 2

    def test_warm_start_validation(self):
        observed = np.ones((4, 3))
        mask = np.ones((4, 3))
        good = censored_als(observed, mask, config=ALSConfig(rank=2, iterations=2))
        with pytest.raises(CompletionError):
            censored_als(
                observed,
                mask,
                config=ALSConfig(rank=3, iterations=2),
                warm_start=(good.query_factors, good.hint_factors),
            )
        with pytest.raises(CompletionError):
            censored_als(
                observed,
                mask,
                config=ALSConfig(rank=2, iterations=2),
                warm_start=(np.ones((9, 2)), good.hint_factors),
            )
        with pytest.raises(CompletionError):
            censored_als(
                observed, mask, config=ALSConfig(rank=2, iterations=2), iterations=0
            )


class TestServingService:
    def test_serve_and_feedback_roundtrip(self):
        matrix = make_matrix()
        service = ServingService(
            matrix, refresher=IncrementalALSRefresher(ALSConfig(rank=2, iterations=3))
        )
        first = service.serve_batch([1])
        assert first.hints[0] == 0
        service.observe_batch([1], [2], [0.5])
        second = service.serve_batch([1])
        assert second.hints[0] == 2
        stats = service.stats()
        assert stats.decisions == 2
        assert stats.batches == 2
        assert stats.refreshes == 1
        assert service.completed_matrix().shape == matrix.shape

    def test_stats_counts_and_hit_rate(self):
        matrix = make_matrix()
        ticks = iter(np.arange(0.0, 10.0, 0.5))
        service = ServingService(matrix, clock=lambda: float(next(ticks)))
        service.serve_batch([0, 0, 1, 2])  # one non-default decision per [0]
        stats = service.stats()
        assert stats.decisions == 4
        assert stats.non_default_fraction == pytest.approx(0.5)
        assert stats.wall_seconds == pytest.approx(0.5)
        assert stats.throughput_qps == pytest.approx(8.0)
        assert stats.p50_latency_s == pytest.approx(0.125)

    def test_annotate_without_estimator_raises(self):
        service = ServingService(make_matrix())
        with pytest.raises(ServingError):
            service.serve_batch([0], annotate=True)

    def test_out_of_range_batch_raises(self):
        service = ServingService(make_matrix())
        with pytest.raises(ServingError):
            service.serve_batch([99])

    def test_empty_recorder_reports_zeros(self):
        stats = LatencyRecorder().report()
        assert stats.decisions == 0
        assert stats.throughput_qps == 0.0

    def test_empty_feedback_batch_does_not_count_a_refresh(self):
        service = ServingService(
            make_matrix(),
            refresher=IncrementalALSRefresher(ALSConfig(rank=2, iterations=2)),
        )
        service.observe_batch([], [], [])
        assert service.stats().refreshes == 0

    def test_percentiles_match_expanded_population(self):
        recorder = LatencyRecorder()
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 40, 20)
        seconds = rng.random(20) * 1e-3
        for size, sec in zip(sizes, seconds):
            recorder.record(int(size), float(sec), 0)
        stats = recorder.report()
        expanded = np.repeat(seconds / sizes, sizes)
        p50, p99 = np.percentile(expanded, [50.0, 99.0])
        assert stats.p50_latency_s == pytest.approx(p50)
        assert stats.p99_latency_s == pytest.approx(p99)

    def test_facade_integration(self, tiny_workload):
        from repro.core.explorer import MatrixOracle
        from repro.core.limeqo import LimeQO
        from repro.core.policies import RandomPolicy

        oracle = MatrixOracle(tiny_workload.true_latencies)
        limeqo = LimeQO(
            n_hints=tiny_workload.n_hints,
            oracle=oracle,
            policy=RandomPolicy(),
            query_names=[f"q{i}" for i in range(8)],
        )
        limeqo.explore(time_budget=50.0, max_steps=4)
        names = [f"q{i}" for i in range(8)]
        batched = limeqo.lookup_batch(names)
        assert batched == [limeqo.lookup(name) for name in names]
        service = limeqo.serving_service()
        decisions = service.serve_all()
        assert decisions.hints.tolist() == [d.hint for d in limeqo.plan_cache().lookup_all()]


class TestBatchedTCNNInference:
    def test_estimator_matches_per_cell_prediction(self, tiny_workload, fast_tcnn_config):
        from repro.nn.trainer import TCNNTrainer

        matrix = explored_matrix(tiny_workload, observed_fraction=0.2, seed=4)
        store = tiny_workload.feature_store()
        trainer = TCNNTrainer(
            store, matrix.n_queries, matrix.n_hints, config=fast_tcnn_config
        )
        trainer.fit(matrix)
        estimator = BatchedLatencyEstimator(trainer, store)
        service = ServingService(matrix, estimator=estimator)
        decisions = service.serve_batch(np.arange(10), annotate=True)
        per_cell = trainer.predict_cells(
            list(zip(decisions.queries.tolist(), decisions.hints.tolist()))
        )
        np.testing.assert_allclose(decisions.predicted_latency, per_cell)
        # Warming up pre-packs the whole plan space; the sliced fast path
        # must produce identical predictions and reuse the packed tensor.
        estimator.warm_up(matrix.shape)
        packed = estimator._packed
        warmed = service.serve_batch(np.arange(10), annotate=True)
        np.testing.assert_allclose(warmed.predicted_latency, decisions.predicted_latency)
        assert estimator._packed is packed

    def test_predict_cells_batch_size_override(self, tiny_workload, fast_tcnn_config):
        from repro.nn.trainer import TCNNTrainer

        matrix = explored_matrix(tiny_workload, observed_fraction=0.2, seed=4)
        store = tiny_workload.feature_store()
        trainer = TCNNTrainer(
            store, matrix.n_queries, matrix.n_hints, config=fast_tcnn_config
        )
        trainer.fit(matrix)
        cells = [(0, 0), (1, 3), (2, 7), (3, 1), (4, 4)]
        np.testing.assert_allclose(
            trainer.predict_cells(cells, batch_size=2),
            trainer.predict_cells(cells),
        )


class TestThroughputExperiment:
    def test_comparison_reports_identical_decisions(self, tiny_workload):
        report = serving_throughput_comparison(
            tiny_workload, batch_size=64, n_batches=4, seed=0
        )
        assert report["identical"] == 1.0
        assert report["decisions"] == 256.0
        assert report["batched_qps"] > 0
