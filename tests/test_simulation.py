"""Tests for the exploration simulator and traces."""

import numpy as np
import pytest

from repro.config import ExplorationConfig
from repro.core.policies import GreedyPolicy, LimeQOPolicy, RandomPolicy
from repro.core.simulation import ExplorationSimulator, ExplorationTrace
from repro.errors import ExplorationError


@pytest.fixture(scope="module")
def simulator(tiny_workload):
    return ExplorationSimulator(
        tiny_workload.true_latencies, config=ExplorationConfig(batch_size=5, seed=0)
    )


def test_reference_quantities(tiny_workload, simulator):
    assert simulator.default_latency == pytest.approx(tiny_workload.default_total)
    assert simulator.optimal_latency == pytest.approx(tiny_workload.optimal_total)
    assert simulator.headroom > 1.0
    assert simulator.full_exploration_time() > simulator.default_latency


def test_initial_matrix_reveals_default_column(simulator, tiny_workload):
    matrix = simulator.initial_matrix()
    assert matrix.observed_fraction() == pytest.approx(1.0 / tiny_workload.n_hints)
    assert matrix.workload_latency() == pytest.approx(simulator.default_latency)


def test_warm_start_can_be_disabled(tiny_workload):
    simulator = ExplorationSimulator(
        tiny_workload.true_latencies, warm_start_default=False
    )
    assert simulator.initial_matrix().observed_fraction() == 0.0


def test_trace_structure_and_monotonicity(simulator):
    trace = simulator.run(RandomPolicy(), time_budget=0.5 * simulator.default_latency)
    assert isinstance(trace, ExplorationTrace)
    assert trace.times[0] == 0.0
    assert np.all(np.diff(trace.times) >= 0)
    assert np.all(np.diff(trace.latencies) <= 1e-9)
    assert trace.latencies[0] == pytest.approx(simulator.default_latency)
    assert trace.final_latency <= simulator.default_latency
    assert trace.final_latency >= simulator.optimal_latency - 1e-9


def test_latency_at_is_a_step_function(simulator):
    trace = simulator.run(RandomPolicy(), time_budget=0.3 * simulator.default_latency)
    assert trace.latency_at(0.0) == pytest.approx(simulator.default_latency)
    midpoint = trace.times[-1] / 2
    assert trace.latency_at(midpoint) >= trace.final_latency
    assert trace.latency_at(trace.times[-1] * 10) == pytest.approx(trace.final_latency)
    with pytest.raises(ExplorationError):
        trace.latency_at(-1.0)


def test_latencies_at_vectorised(simulator):
    trace = simulator.run(RandomPolicy(), time_budget=0.3 * simulator.default_latency)
    checkpoints = [0.0, trace.times[-1] / 2, trace.times[-1]]
    values = trace.latencies_at(checkpoints)
    assert values.shape == (3,)
    assert values[0] >= values[-1]


def test_speedup_and_overhead_accessors(simulator):
    trace = simulator.run(
        LimeQOPolicy(), time_budget=0.5 * simulator.default_latency
    )
    assert trace.speedup_at(trace.times[-1]) >= 1.0
    assert trace.overhead_at(0.0) == 0.0
    assert trace.overhead_at(trace.times[-1]) >= 0.0


def test_run_many_runs_all_policies(simulator):
    traces = simulator.run_many(
        [RandomPolicy(), GreedyPolicy()], time_budget=0.25 * simulator.default_latency
    )
    assert [t.policy_name for t in traces] == ["random", "greedy"]


def test_limeqo_outperforms_random_at_large_budgets(ceb_mini_workload):
    simulator = ExplorationSimulator(
        ceb_mini_workload.true_latencies, config=ExplorationConfig(batch_size=10, seed=0)
    )
    budget = 2.0 * simulator.default_latency
    limeqo = simulator.run(LimeQOPolicy(), time_budget=budget)
    random = simulator.run(RandomPolicy(), time_budget=budget)
    assert limeqo.final_latency <= random.final_latency * 1.05


def test_invalid_latency_matrix_rejected():
    with pytest.raises(ExplorationError):
        ExplorationSimulator(np.ones(4))


def test_latencies_at_rejects_negative_times(simulator):
    trace = simulator.run(RandomPolicy(), max_steps=3)
    with pytest.raises(ExplorationError):
        trace.latencies_at([1.0, -0.5])


def test_latencies_at_matches_scalar_lookup(simulator):
    trace = simulator.run(RandomPolicy(), max_steps=5)
    checkpoints = np.linspace(0.0, trace.total_exploration_time * 1.2, 17)
    vectorised = trace.latencies_at(checkpoints)
    scalar = np.array([trace.latency_at(t) for t in checkpoints])
    np.testing.assert_array_equal(vectorised, scalar)


def test_initial_matrix_uses_batched_observation(simulator):
    matrix = simulator.initial_matrix()
    # One batched mutation, not one version bump per query.
    assert matrix.version == 1
