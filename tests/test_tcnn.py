"""Tests for the TCNN and transductive TCNN models."""

import numpy as np
import pytest

from repro.config import TCNNConfig
from repro.errors import NeuralNetworkError
from repro.nn.tcnn import TCNNModel, TransductiveTCNN


@pytest.fixture
def small_config():
    return TCNNConfig(
        embedding_rank=3, channels=(8,), hidden_units=(8,), dropout=0.0,
        batch_size=8, max_epochs=2, seed=0,
    )


@pytest.fixture
def batch(tiny_workload):
    store = tiny_workload.feature_store()
    return store.batch([(0, 0), (1, 3), (2, 7), (5, 1)])


def test_tcnn_output_shape(batch, small_config):
    model = TCNNModel(small_config)
    out = model(batch)
    assert out.shape == (4,)


def test_tcnn_gradients_reach_every_parameter(batch, small_config):
    model = TCNNModel(small_config)
    out = model(batch)
    (out * out).mean().backward()
    assert all(p.grad is not None for p in model.parameters())


def test_transductive_tcnn_uses_embeddings(batch, small_config):
    model = TransductiveTCNN(10, 8, small_config)
    query_idx = np.array([0, 1, 2, 5])
    hint_idx = np.array([0, 3, 7, 1])
    out_a = model(batch, query_idx, hint_idx)
    # Different query ids must be able to change the prediction.
    out_b = model(batch, np.array([9, 8, 7, 6]), hint_idx)
    assert out_a.shape == (4,)
    assert not np.allclose(out_a.data, out_b.data)


def test_transductive_tcnn_validates_index_lengths(batch, small_config):
    model = TransductiveTCNN(10, 8, small_config)
    with pytest.raises(NeuralNetworkError):
        model(batch, np.array([0, 1]), np.array([0, 1, 2, 3]))


def test_transductive_tcnn_grow_queries(batch, small_config):
    model = TransductiveTCNN(4, 8, small_config)
    model.grow_queries(12)
    assert model.n_queries == 12
    out = model(batch, np.array([11, 10, 9, 8]), np.array([0, 1, 2, 3]))
    assert out.shape == (4,)


def test_transductive_tcnn_dimension_validation(small_config):
    with pytest.raises(NeuralNetworkError):
        TransductiveTCNN(0, 8, small_config)


def test_embedding_parameters_are_trainable(batch, small_config):
    model = TransductiveTCNN(10, 8, small_config)
    out = model(batch, np.array([0, 1, 2, 5]), np.array([0, 3, 7, 1]))
    (out * out).mean().backward()
    assert model.query_embedding.weight.grad is not None
    assert model.hint_embedding.weight.grad is not None
