"""Telemetry: registry algebra, tracing, hot-path cost, stats mirrors.

The merge law is the load-bearing property: because every histogram of a
family shares fixed bucket bounds, ``merge(a, b)`` must be *exactly*
``observe(union of samples)`` -- that is what makes per-shard registries
foldable into one cluster view without approximation (beyond the bucket
resolution any single histogram already has).  Hypothesis sweeps it.

The other contracts under test:

* label cardinality collapses into ``__overflow__`` past the bound,
* the slow-trace ring evicts oldest-first and counts drops,
* telemetry **disabled** adds zero allocations and zero code to the
  batched lookup hot path (the service normalises a disabled telemetry
  object to ``None`` and takes the identical branch),
* decisions are byte-identical with telemetry on vs off,
* ``ServingStats.from_registry`` / ``ClusterStats.from_registry``
  agree with the recorder-backed reports (the dual-write mirror),
* direct ``record_shed`` outside the blessed paths warns once a
  registry mirror is bound,
* ``configure_logging`` reconfigures its own handler on repeated calls
  and ``json_logs=True`` emits one parseable dict per line.
"""

from __future__ import annotations

import gc
import io
import json
import logging
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TelemetryConfig
from repro.core.workload_matrix import WorkloadMatrix
from repro.cluster.cluster import ServingCluster
from repro.cluster.stats import ClusterStats
from repro.errors import TelemetryError
from repro.logging_util import JsonFormatter, configure_logging, get_logger
from repro.serving.service import ServingService
from repro.serving.stats import LatencyRecorder, ServingStats
from repro.telemetry import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    collect_snapshot,
    write_telemetry_json,
)


def make_matrix(n_queries: int = 20, n_hints: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    matrix = WorkloadMatrix(n_queries, n_hints)
    for q in range(n_queries):
        for h in range(n_hints):
            matrix.observe(q, h, float(rng.uniform(0.01, 0.3)))
    return matrix


def serve_traffic(service, n_batches: int = 8, seed: int = 1):
    rng = np.random.default_rng(seed)
    hints = []
    for _ in range(n_batches):
        batch = rng.integers(0, service.matrix.n_queries, size=16)
        decisions = service.serve_batch(batch)
        hints.append(decisions.hints.copy())
        service.observe_batch(
            batch,
            decisions.hints.tolist(),
            rng.uniform(0.01, 0.2, size=batch.size).tolist(),
            refresh=False,
        )
    return hints


# -- primitive metrics ---------------------------------------------------------


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(TelemetryError):
            c.inc(-1)
        with pytest.raises(AttributeError):
            c.value = 99  # read-only: the registry is the mutation authority

    def test_gauge_up_and_down(self):
        g = Gauge()
        g.set(10)
        g.dec(4)
        g.inc()
        assert g.value == 7.0

    def test_histogram_bounds_validation(self):
        with pytest.raises(TelemetryError):
            Histogram(bounds=[])
        with pytest.raises(TelemetryError):
            Histogram(bounds=[1.0, 1.0, 2.0])
        with pytest.raises(TelemetryError):
            Histogram(bounds=[2.0, 1.0])

    def test_histogram_weighted_observe_is_batch_amortised(self):
        h = Histogram(bounds=(0.1, 1.0))
        h.observe(0.05, weight=32)  # one batch, 32 decisions
        assert h.count == 32
        assert h.total == pytest.approx(0.05 * 32)
        assert h.counts[0] == 32

    def test_histogram_observe_many_matches_loop(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 1.5, size=200)
        vector = Histogram()
        vector.observe_many(values)
        loop = Histogram()
        for v in values:
            loop.observe(float(v))
        assert vector.counts == loop.counts
        assert vector.count == loop.count
        assert vector.total == pytest.approx(loop.total)

    def test_histogram_quantile_anchors(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        assert h.quantile(0.5) == 0.0  # empty
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        assert 0.0 <= h.quantile(0.25) <= 1.0
        assert h.quantile(1.0) == 4.0  # +Inf clamps to last bound
        with pytest.raises(TelemetryError):
            h.quantile(1.5)


# -- the merge law (hypothesis) ------------------------------------------------


_SAMPLES = st.lists(
    st.tuples(
        st.floats(
            min_value=0.0,
            max_value=2.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        st.integers(min_value=1, max_value=5),
    ),
    max_size=40,
)


class TestMergeLaw:
    @given(left=_SAMPLES, right=_SAMPLES)
    @settings(deadline=None, max_examples=80)
    def test_histogram_merge_equals_observe_all(self, left, right):
        a = Histogram()
        for value, weight in left:
            a.observe(value, weight)
        b = Histogram()
        for value, weight in right:
            b.observe(value, weight)
        merged = Histogram()
        merged.merge_from(a)
        merged.merge_from(b)
        direct = Histogram()
        for value, weight in left + right:
            direct.observe(value, weight)
        assert merged.counts == direct.counts
        assert merged.count == direct.count
        assert merged.total == pytest.approx(direct.total)
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == pytest.approx(direct.quantile(q))

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(TelemetryError):
            a.merge_from(b)

    def test_registry_merge_folds_families_and_labels(self):
        parts = []
        for shard in range(3):
            reg = MetricsRegistry()
            reg.counter("repro_x_total", labels=("shard",)).labels(
                str(shard)
            ).inc(shard + 1)
            reg.histogram("repro_y_seconds").child.observe(0.01 * (shard + 1))
            parts.append(reg)
        merged = MetricsRegistry.merged(parts)
        family = merged.get("repro_x_total")
        assert merged.get("repro_y_seconds").child.count == 3
        assert family.merged_child().value == 1 + 2 + 3
        assert {key[0] for key, _ in family.children()} == {"0", "1", "2"}


# -- cardinality guard ---------------------------------------------------------


class TestCardinality:
    def test_overflow_collapses_past_bound(self):
        reg = MetricsRegistry(max_label_values=3)
        family = reg.counter("repro_t_total", labels=("tenant",))
        for tenant in ("a", "b", "c"):
            family.labels(tenant).inc()
        overflowed = family.labels("d")
        again = family.labels("e")
        assert overflowed is again  # both collapse onto the shared child
        overflowed.inc(5)
        assert family.labels(OVERFLOW_LABEL).value == 5
        assert reg.label_overflows.value == 2
        # Established children keep working past the bound.
        family.labels("a").inc()
        assert family.labels("a").value == 2
        assert len(family.children()) == 4  # 3 real + overflow

    def test_snapshot_reports_overflows(self):
        reg = MetricsRegistry(max_label_values=1)
        fam = reg.counter("repro_t_total", labels=("tenant",))
        fam.labels("a").inc()
        fam.labels("b").inc()
        assert reg.snapshot()["_label_overflows"] == 1

    def test_registration_signature_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        assert reg.counter("repro_x_total") is reg.get("repro_x_total")
        with pytest.raises(TelemetryError):
            reg.gauge("repro_x_total")
        with pytest.raises(TelemetryError):
            reg.counter("repro_x_total", labels=("shard",))
        with pytest.raises(TelemetryError):
            reg.counter("bad name!")


# -- tracing -------------------------------------------------------------------


class TestTracing:
    def test_ring_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(MetricsRegistry(), ring_size=3)
        for i in range(5):
            tracer.start(f"t{i}")
            tracer.record_stage("shard.serve", 0.001 * (i + 1))
            tracer.finish()
        names = [t.name for t in tracer.slow_traces()]
        assert names == ["t2", "t3", "t4"]  # t0, t1 evicted oldest-first
        assert tracer.dropped_traces == 2
        assert tracer.finished_traces == 5

    def test_slow_threshold_filters_ring(self):
        tracer = Tracer(MetricsRegistry(), slow_trace_seconds=0.01)
        tracer.start("fast")
        tracer.record_stage("shard.serve", 0.001)
        tracer.finish()
        tracer.start("slow")
        tracer.record_stage("shard.serve", 0.02)
        tracer.finish()
        assert [t.name for t in tracer.slow_traces()] == ["slow"]
        assert tracer.finished_traces == 2  # both finished, one admitted

    def test_stages_feed_histogram_without_open_trace(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        tracer.record_stage("cache.lookup", 0.003, weight=4)
        hist = reg.get("repro_stage_seconds").labels("cache.lookup")
        assert hist.count == 4
        assert tracer.current is None

    def test_total_is_enclosing_stage_and_slowest_sorts(self):
        tracer = Tracer(MetricsRegistry())
        tracer.start("req", batch_size=8)
        tracer.record_stage("shard.serve", 0.010)
        tracer.record_stage("cache.lookup", 0.004)  # nested, not additive
        trace = tracer.finish()
        assert trace.total_seconds == pytest.approx(0.010)
        slowest = tracer.slowest(1)
        assert slowest and slowest[0].name == "req"

    def test_abandon_drops_current(self):
        tracer = Tracer(MetricsRegistry())
        tracer.start("doomed")
        tracer.abandon()
        assert tracer.finish() is None
        assert tracer.slow_traces() == []


# -- exposition ----------------------------------------------------------------


class TestExposition:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_decisions_total", "Decisions served.", labels=("shard",)
        ).labels("0").inc(7)
        hist = reg.histogram("repro_batch_seconds", bounds=(0.1, 1.0))
        hist.child.observe(0.05)
        hist.child.observe(0.5)
        hist.child.observe(5.0)
        text = reg.expose_text()
        assert "# HELP repro_decisions_total Decisions served." in text
        assert "# TYPE repro_decisions_total counter" in text
        assert 'repro_decisions_total{shard="0"} 7' in text
        assert "# TYPE repro_batch_seconds histogram" in text
        # Cumulative buckets: 1 at le=0.1, 2 at le=1.0, 3 at +Inf.
        assert 'repro_batch_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_batch_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_batch_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_batch_seconds_count 3" in text
        assert "repro_label_overflows_total 0" in text

    def test_snapshot_is_json_ready(self):
        tel = Telemetry.enabled()
        tel.serving_metrics().decisions.inc(3)
        json.dumps(tel.snapshot())  # must not raise
        json.dumps(tel.registry.snapshot())


# -- config --------------------------------------------------------------------


class TestConfig:
    def test_disabled_by_default(self):
        assert TelemetryConfig().enabled is False
        assert Telemetry().config.enabled is False
        assert Telemetry.enabled().config.enabled is True

    def test_validation(self):
        with pytest.raises(Exception):
            TelemetryConfig(trace_ring=0)
        with pytest.raises(Exception):
            TelemetryConfig(max_label_values=0)
        with pytest.raises(Exception):
            TelemetryConfig(latency_buckets=(2.0, 1.0))

    def test_labeled_views_share_registry(self):
        tel = Telemetry.enabled()
        shard0 = tel.labeled("0")
        shard1 = tel.labeled("1")
        assert shard0.registry is tel.registry
        assert shard0.tracer is tel.tracer
        shard0.serving_metrics().decisions.inc(2)
        shard1.serving_metrics().decisions.inc(3)
        family = tel.registry.get("repro_decisions_total")
        assert family.merged_child().value == 5

    def test_child_gets_own_registry(self):
        tel = Telemetry.enabled()
        child = tel.child("w1")
        assert child.registry is not tel.registry
        child.serving_metrics().decisions.inc(4)
        merged = tel.merged_registry([child])
        assert merged.get("repro_decisions_total").merged_child().value == 4


# -- hot path ------------------------------------------------------------------


class TestHotPath:
    def test_decisions_identical_with_telemetry_on_off(self):
        base = ServingService(make_matrix(seed=5))
        instrumented = ServingService(
            make_matrix(seed=5), telemetry=Telemetry.enabled()
        )
        for hints_a, hints_b in zip(
            serve_traffic(base, seed=9), serve_traffic(instrumented, seed=9)
        ):
            np.testing.assert_array_equal(hints_a, hints_b)

    def test_disabled_telemetry_normalises_to_none(self):
        service = ServingService(make_matrix(), telemetry=Telemetry())
        assert service.telemetry is None
        assert service.cache._tracer is None

    def test_disabled_adds_zero_allocations_on_batched_lookup(self):
        def blocks_per_decide(service, rounds=60):
            queries = np.arange(service.matrix.n_queries, dtype=np.int64)
            for _ in range(5):  # warm caches, interned ints, freelists
                service.cache.decide(queries)
            gc.collect()
            gc.disable()
            try:
                before = sys.getallocatedblocks()
                for _ in range(rounds):
                    service.cache.decide(queries)
                return sys.getallocatedblocks() - before
            finally:
                gc.enable()

        plain = ServingService(make_matrix(seed=2))
        disabled = ServingService(make_matrix(seed=2), telemetry=Telemetry())
        # Identical code path => identical steady-state allocation profile.
        assert blocks_per_decide(disabled) == blocks_per_decide(plain)

    def test_enabled_records_stages_and_counters(self):
        tel = Telemetry.enabled()
        service = ServingService(make_matrix(), telemetry=tel)
        served = sum(h.size for h in serve_traffic(service, n_batches=4))
        # The feedback path records its stage unconditionally; the serve
        # stages only attribute inside an open trace (see ingress test).
        stage = tel.registry.get("repro_stage_seconds")
        assert {key[0] for key, _ in stage.children()} == {"observe"}
        tel.sync()  # counters mirror lazily; exports flush first
        decisions = tel.registry.get("repro_decisions_total").merged_child()
        assert decisions.value == served

    def test_ingress_traces_cover_serve_stages(self):
        import asyncio

        from repro.config import IngressConfig
        from repro.ingress import ServiceIngress

        tel = Telemetry.enabled()
        service = ServingService(make_matrix(), telemetry=tel)
        rng = np.random.default_rng(21)
        queries = rng.integers(0, 20, size=64).tolist()

        async def drive():
            config = IngressConfig(max_batch=16, max_wait_s=0.001)
            async with ServiceIngress(service, config) as ingress:
                return await ingress.serve_many(queries)

        results = asyncio.run(drive())
        assert len(results) == len(queries)
        assert tel.tracer.finished_traces > 0
        ring = tel.tracer.slow_traces()
        assert ring, "threshold 0.0 admits every trace"
        stages = {stage for trace in ring for stage, _ in trace.stages}
        assert {"ingress.flush", "shard.serve", "cache.lookup"} <= stages
        stage_names = {
            key[0]
            for key, _ in tel.registry.get("repro_stage_seconds").children()
        }
        assert {"ingress.flush", "shard.serve", "cache.lookup"} <= stage_names


# -- stats mirrors -------------------------------------------------------------


class TestStatsMirror:
    def test_service_from_registry_matches_recorder(self, fast_als_config):
        from repro.serving.refresh import IncrementalALSRefresher

        tel = Telemetry.enabled()
        service = ServingService(
            make_matrix(),
            refresher=IncrementalALSRefresher(fast_als_config),
            telemetry=tel,
        )
        serve_traffic(service, n_batches=6)
        service.refresh_now()
        recorded = service.stats()
        mirrored = ServingStats.from_registry(tel.registry)
        assert mirrored.decisions == recorded.decisions
        assert mirrored.batches == recorded.batches
        assert mirrored.refreshes == recorded.refreshes
        assert mirrored.shed == recorded.shed
        assert mirrored.non_default_fraction == pytest.approx(
            recorded.non_default_fraction
        )
        assert mirrored.wall_seconds == pytest.approx(recorded.wall_seconds)
        payload = recorded.as_dict(registry=tel.registry)
        assert payload["telemetry"]["consistent"] is True

    def test_from_registry_on_empty_registry_is_zero(self):
        stats = ServingStats.from_registry(MetricsRegistry())
        assert stats.decisions == 0
        assert stats.throughput_qps == 0.0

    def test_cluster_from_registry_consistent_without_crashes(self):
        rng = np.random.default_rng(11)
        tel = Telemetry.enabled()
        cluster = ServingCluster(3, 4, telemetry=tel)
        keys = [f"q{i}" for i in range(18)]
        cluster.add_tenant("t", keys)
        for _ in range(6):
            batch = rng.integers(0, len(keys), size=8)
            decisions = cluster.serve_batch("t", batch)
            cluster.observe_batch(
                "t",
                batch,
                decisions.hints.tolist(),
                rng.uniform(0.01, 0.2, size=8).tolist(),
            )
        cluster.tick()
        stats = cluster.stats()
        payload = stats.as_dict(registry=tel.registry)
        assert payload["telemetry"]["consistent"] is True
        mirror = ClusterStats.from_registry(tel.registry)
        assert mirror.cluster.decisions == stats.cluster.decisions
        assert mirror.routed_batches == stats.routed_batches
        assert sorted(mirror.per_shard) == sorted(stats.per_shard)
        assert mirror.n_shards == stats.n_shards
        assert mirror.total_rows == stats.total_rows

    def test_direct_shed_mutation_warns_once_mirrored(self):
        recorder = LatencyRecorder()
        recorder.record_shed(2)  # unmirrored: legacy path stays silent
        tel = Telemetry.enabled()
        recorder.bind_metrics(tel.serving_metrics())
        with pytest.warns(DeprecationWarning):
            recorder.record_shed(3)
        assert recorder.report().shed == 5
        shed = tel.registry.get("repro_shed_total").merged_child().value
        assert shed == 3  # only mirrored increments reach the registry

    def test_blessed_shed_path_does_not_warn(self):
        tel = Telemetry.enabled()
        service = ServingService(make_matrix(), telemetry=tel)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service.record_shed(4)
        assert service.stats().shed == 4
        assert tel.registry.get("repro_shed_total").merged_child().value == 4


# -- snapshots -----------------------------------------------------------------


class TestSnapshots:
    def test_collect_snapshot_sections(self, tmp_path, monkeypatch):
        tel = Telemetry.enabled()
        service = ServingService(make_matrix(), telemetry=tel)
        serve_traffic(service, n_batches=3)
        snapshot = collect_snapshot(
            telemetry=tel, service=service, extra={"run": "unit"}
        )
        payload = snapshot.as_dict()
        assert payload["schema_version"] == 1
        assert payload["enabled"] is True
        assert "repro_decisions_total" in payload["metrics"]
        assert payload["serving"]["decisions"] > 0
        assert payload["extra"] == {"run": "unit"}
        json.loads(snapshot.to_json())
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        path = write_telemetry_json("unit", snapshot)
        written = json.loads((tmp_path / "TELEMETRY_unit.json").read_text())
        assert written["schema_version"] == 1
        assert path.endswith("TELEMETRY_unit.json")

    def test_cluster_snapshot_has_wal_and_health(self, tmp_path):
        rng = np.random.default_rng(13)
        tel = Telemetry.enabled()
        cluster = ServingCluster(
            2, 4, durability_dir=str(tmp_path), telemetry=tel
        )
        keys = [f"q{i}" for i in range(12)]
        cluster.add_tenant("t", keys)
        batch = rng.integers(0, len(keys), size=8)
        decisions = cluster.serve_batch("t", batch)
        cluster.observe_batch(
            "t",
            batch,
            decisions.hints.tolist(),
            rng.uniform(0.01, 0.2, size=8).tolist(),
        )
        cluster.checkpoint()
        snapshot = collect_snapshot(telemetry=tel, cluster=cluster)
        wal = snapshot.section("wal")
        assert sorted(wal) == ["0", "1"]
        for section in wal.values():
            assert section["checkpoints"] == 1
            assert section["segment_count"] >= 1
        assert snapshot.section("health")["n_up"] == 2
        assert snapshot.section("scheduler")["budget_per_tick"] >= 1
        json.loads(snapshot.to_json())


# -- logging satellites --------------------------------------------------------


class TestLogging:
    @pytest.fixture(autouse=True)
    def _clean_repro_logger(self):
        logger = logging.getLogger("repro")
        saved = list(logger.handlers)
        saved_level = logger.level
        for handler in saved:
            logger.removeHandler(handler)
        yield
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        for handler in saved:
            logger.addHandler(handler)
        logger.setLevel(saved_level)

    def test_repeated_calls_update_handler_level(self):
        logger = configure_logging(logging.DEBUG)
        handler = logger.handlers[0]
        assert handler.level == logging.DEBUG
        configure_logging(logging.WARNING)
        assert len(logger.handlers) == 1
        assert handler.level == logging.WARNING
        assert logger.level == logging.WARNING

    def test_json_logs_emit_one_dict_per_line(self):
        logger = configure_logging(logging.INFO, json_logs=True)
        handler = logger.handlers[0]
        assert isinstance(handler.formatter, JsonFormatter)
        stream = io.StringIO()
        handler.stream = stream
        get_logger("unit").info("served %d", 42)
        get_logger("unit").warning("drift")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["message"] == "served 42"
        assert first["level"] == "INFO"
        assert first["logger"] == "repro.unit"
        assert json.loads(lines[1])["level"] == "WARNING"

    def test_flipping_json_mode_swaps_formatter_in_place(self):
        logger = configure_logging(logging.INFO, json_logs=True)
        configure_logging(logging.INFO, json_logs=False)
        assert len(logger.handlers) == 1
        assert not isinstance(logger.handlers[0].formatter, JsonFormatter)

    def test_foreign_handlers_are_left_alone(self):
        logger = logging.getLogger("repro")
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        configure_logging(logging.INFO)
        assert foreign in logger.handlers
        assert len(logger.handlers) == 2  # foreign + the managed one
        configure_logging(logging.DEBUG)
        assert len(logger.handlers) == 2  # still no duplication


DEFAULT_BUCKET_COUNT = len(DEFAULT_BUCKETS)


def test_default_buckets_match_config():
    assert tuple(TelemetryConfig().latency_buckets) == DEFAULT_BUCKETS
    assert DEFAULT_BUCKET_COUNT == 19
