"""Tests for the TCNN training loop and predictors built on it."""

import numpy as np
import pytest

from repro.config import TCNNConfig
from repro.core.predictors import TCNNPredictor, TransductiveTCNNPredictor
from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import NeuralNetworkError
from repro.nn.trainer import TCNNTrainer


def small_config(**overrides):
    base = dict(
        embedding_rank=3, channels=(8,), hidden_units=(8,), dropout=0.0,
        learning_rate=3e-3, batch_size=16, max_epochs=4, convergence_window=2,
        seed=0,
    )
    base.update(overrides)
    return TCNNConfig(**base)


def observed_matrix(workload, fill=0.25, seed=0, censor_some=False):
    truth = workload.true_latencies
    n, k = truth.shape
    matrix = WorkloadMatrix(n, k)
    rng = np.random.default_rng(seed)
    for i in range(n):
        matrix.observe(i, 0, float(truth[i, 0]))
    extra = rng.random((n, k)) < fill
    for i in range(n):
        for j in range(1, k):
            if extra[i, j]:
                matrix.observe(i, j, float(truth[i, j]))
    if censor_some:
        for i, j in [(1, 5), (2, 9), (4, 11)]:
            if not matrix.is_observed(i, j):
                matrix.observe_censored(i, j, float(truth[i, j]) * 0.5)
    return matrix


def test_trainer_requires_observations(tiny_workload):
    trainer = TCNNTrainer(tiny_workload.feature_store(), tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config())
    with pytest.raises(NeuralNetworkError):
        trainer.fit(WorkloadMatrix(tiny_workload.n_queries, tiny_workload.n_hints))


def test_trainer_fit_reduces_loss(tiny_workload):
    matrix = observed_matrix(tiny_workload)
    trainer = TCNNTrainer(tiny_workload.feature_store(), tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config(max_epochs=8))
    losses = trainer.fit(matrix)
    assert losses[-1] <= losses[0]


def test_trainer_predictions_have_matrix_shape_and_are_nonnegative(tiny_workload):
    matrix = observed_matrix(tiny_workload)
    trainer = TCNNTrainer(tiny_workload.feature_store(), tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config())
    trainer.fit(matrix)
    predictions = trainer.predict_all(matrix)
    assert predictions.shape == matrix.shape
    assert (predictions >= 0).all()


def test_trainer_handles_censored_cells(tiny_workload):
    matrix = observed_matrix(tiny_workload, censor_some=True)
    trainer = TCNNTrainer(tiny_workload.feature_store(), tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config())
    losses = trainer.fit(matrix)
    assert np.isfinite(losses).all()


def test_trainer_warm_start_keeps_model(tiny_workload):
    matrix = observed_matrix(tiny_workload)
    trainer = TCNNTrainer(tiny_workload.feature_store(), tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config())
    trainer.fit(matrix)
    model_before = trainer.model
    trainer.fit(matrix)
    assert trainer.model is model_before
    assert len(trainer.loss_history) > 0


def test_trainer_grow_queries(tiny_workload):
    store = tiny_workload.feature_store()
    trainer = TCNNTrainer(store, tiny_workload.n_queries, tiny_workload.n_hints,
                          small_config())
    store.add_query()
    trainer.grow_queries(tiny_workload.n_queries + 1)
    assert trainer.n_queries == tiny_workload.n_queries + 1


def test_predict_cells_empty_input(tiny_workload):
    trainer = TCNNTrainer(tiny_workload.feature_store(), tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config())
    assert trainer.predict_cells([]).shape == (0,)


def test_tcnn_predictor_preserves_observed_values(tiny_workload):
    matrix = observed_matrix(tiny_workload)
    predictor = TCNNPredictor(tiny_workload.feature_store(), small_config())
    estimate = predictor.predict(matrix)
    observed = matrix.mask > 0
    assert np.allclose(estimate[observed], matrix.observed_values()[observed])
    assert predictor.overhead_seconds > 0


def test_transductive_predictor_learns_better_than_untrained_guess(tiny_workload):
    matrix = observed_matrix(tiny_workload, fill=0.35)
    predictor = TransductiveTCNNPredictor(
        tiny_workload.feature_store(), small_config(max_epochs=10)
    )
    estimate = predictor.predict(matrix)
    truth = tiny_workload.true_latencies
    unobserved = matrix.mask == 0
    # Correlation with the truth on unobserved cells should be clearly positive.
    corr = np.corrcoef(np.log1p(estimate[unobserved]), np.log1p(truth[unobserved]))[0, 1]
    assert corr > 0.3


def test_predictor_config_use_embeddings_is_forced(tiny_workload):
    config = small_config()  # use_embeddings defaults to True
    plain = TCNNPredictor(tiny_workload.feature_store(), config)
    assert plain.config.use_embeddings is False
    transductive = TransductiveTCNNPredictor(tiny_workload.feature_store(), config)
    assert transductive.config.use_embeddings is True


def test_predict_full_matches_per_cell_prediction(tiny_workload):
    matrix = observed_matrix(tiny_workload)
    store = tiny_workload.feature_store()
    trainer = TCNNTrainer(store, tiny_workload.n_queries,
                          tiny_workload.n_hints, small_config())
    trainer.fit(matrix)
    full = trainer.predict_full(matrix)
    n, k = matrix.shape
    cells = [(i, j) for i in range(n) for j in range(k)]
    per_cell = trainer.predict_cells(cells).reshape(n, k)
    np.testing.assert_allclose(full, per_cell, rtol=0, atol=0)
    # predict_all stays as a compatible alias.
    np.testing.assert_array_equal(trainer.predict_all(matrix), full)
