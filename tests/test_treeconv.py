"""Tests for tree convolution and dynamic pooling."""

import numpy as np
import pytest

from repro.errors import NeuralNetworkError
from repro.nn.autograd import Tensor
from repro.nn.treeconv import BinaryTreeConv, DynamicPooling, TreeConvStack
from repro.plans.featurize import pack_trees


def toy_tree(num_real_nodes=3, feature_dim=8, seed=0):
    rng = np.random.default_rng(seed)
    count = num_real_nodes + 1
    nodes = np.zeros((count, feature_dim))
    nodes[1:] = rng.normal(size=(num_real_nodes, feature_dim))
    left = np.zeros(count, dtype=np.int64)
    right = np.zeros(count, dtype=np.int64)
    if num_real_nodes >= 3:
        left[1], right[1] = 2, 3
    return nodes, left, right


def test_tree_conv_output_shape_and_padding_invariant():
    batch = pack_trees([toy_tree(3), toy_tree(5, seed=1)])
    layer = BinaryTreeConv(8, 4, seed=0)
    out = layer(Tensor(batch.nodes), batch.left, batch.right, batch.mask)
    assert out.shape == (2, batch.max_nodes, 4)
    # Padding rows (mask == 0) stay exactly zero.
    padded = batch.mask == 0
    assert np.allclose(out.data[padded], 0.0)


def test_tree_conv_uses_children():
    """Changing a child's features must change the parent's output."""
    nodes, left, right = toy_tree(3, seed=2)
    batch_a = pack_trees([(nodes, left, right)])
    changed = nodes.copy()
    changed[2] += 10.0  # left child of node 1
    batch_b = pack_trees([(changed, left, right)])
    layer = BinaryTreeConv(8, 4, seed=0)
    out_a = layer(Tensor(batch_a.nodes), batch_a.left, batch_a.right, batch_a.mask)
    out_b = layer(Tensor(batch_b.nodes), batch_b.left, batch_b.right, batch_b.mask)
    assert not np.allclose(out_a.data[0, 1], out_b.data[0, 1])


def test_tree_conv_gradients_flow_to_all_weights():
    batch = pack_trees([toy_tree(3)])
    layer = BinaryTreeConv(8, 4, seed=0)
    out = layer(Tensor(batch.nodes), batch.left, batch.right, batch.mask)
    out.sum().backward()
    for param in layer.parameters():
        assert param.grad is not None


def test_tree_conv_validation():
    with pytest.raises(NeuralNetworkError):
        BinaryTreeConv(0, 4)
    layer = BinaryTreeConv(8, 4)
    with pytest.raises(NeuralNetworkError):
        layer(Tensor(np.ones((2, 8))), np.zeros((2, 2)), np.zeros((2, 2)), np.ones((2, 2)))


def test_dynamic_pooling_takes_masked_max():
    batch = pack_trees([toy_tree(3)])
    pooled = DynamicPooling()(Tensor(batch.nodes), batch.mask)
    expected = batch.nodes[0, 1:4].max(axis=0)
    assert np.allclose(pooled.data[0], expected)


def test_tree_conv_stack_end_to_end():
    batch = pack_trees([toy_tree(3), toy_tree(4, seed=3)])
    stack = TreeConvStack(8, (8, 4), seed=0)
    pooled = stack(Tensor(batch.nodes), batch.left, batch.right, batch.mask)
    assert pooled.shape == (2, 4)
    pooled.sum().backward()
    assert all(p.grad is not None for p in stack.parameters())


def test_tree_conv_stack_requires_channels():
    with pytest.raises(NeuralNetworkError):
        TreeConvStack(8, ())
