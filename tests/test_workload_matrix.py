"""Tests for the partially observed workload matrix."""

import numpy as np
import pytest

from repro.core.workload_matrix import WorkloadMatrix
from repro.errors import MatrixError


def test_dimensions_must_be_positive():
    with pytest.raises(MatrixError):
        WorkloadMatrix(0, 5)
    with pytest.raises(MatrixError):
        WorkloadMatrix(5, 0)


def test_names_default_and_validate():
    matrix = WorkloadMatrix(2, 3)
    assert len(matrix.query_names) == 2
    assert len(matrix.hint_names) == 3
    with pytest.raises(MatrixError):
        WorkloadMatrix(2, 3, query_names=["only-one"])


def test_observe_and_value():
    matrix = WorkloadMatrix(3, 4)
    matrix.observe(0, 1, 2.5)
    assert matrix.is_observed(0, 1)
    assert matrix.value(0, 1) == 2.5
    assert not matrix.is_observed(0, 2)
    assert matrix.value(0, 2) == float("inf")


def test_observe_rejects_invalid_latency():
    matrix = WorkloadMatrix(2, 2)
    with pytest.raises(MatrixError):
        matrix.observe(0, 0, float("inf"))
    with pytest.raises(MatrixError):
        matrix.observe(0, 0, -1.0)


def test_index_bounds_checked():
    matrix = WorkloadMatrix(2, 2)
    with pytest.raises(MatrixError):
        matrix.observe(2, 0, 1.0)
    with pytest.raises(MatrixError):
        matrix.value(0, 5)


def test_censored_observation_records_lower_bound():
    matrix = WorkloadMatrix(2, 2)
    matrix.observe_censored(0, 1, 3.0)
    assert matrix.is_censored(0, 1)
    assert not matrix.is_observed(0, 1)
    assert matrix.is_known(0, 1)
    assert matrix.value(0, 1) == 3.0
    assert matrix.timeout_matrix[0, 1] == 3.0
    assert matrix.mask[0, 1] == 0.0


def test_censored_keeps_tightest_bound_and_yields_to_observation():
    matrix = WorkloadMatrix(1, 2)
    matrix.observe_censored(0, 0, 2.0)
    matrix.observe_censored(0, 0, 1.0)
    assert matrix.value(0, 0) == 2.0
    matrix.observe(0, 0, 5.0)
    assert matrix.is_observed(0, 0)
    assert matrix.value(0, 0) == 5.0
    # A later censored report cannot downgrade a completed observation.
    matrix.observe_censored(0, 0, 9.0)
    assert matrix.is_observed(0, 0)
    assert matrix.value(0, 0) == 5.0


def test_row_min_ignores_censored_entries():
    matrix = WorkloadMatrix(1, 3)
    matrix.observe(0, 0, 10.0)
    matrix.observe_censored(0, 1, 2.0)
    assert matrix.row_min(0) == 10.0
    assert matrix.best_hint(0) == 0


def test_row_min_inf_when_nothing_observed():
    matrix = WorkloadMatrix(2, 2)
    assert matrix.row_min(0) == float("inf")
    assert matrix.best_hint(0) is None


def test_workload_latency_and_exploration_time():
    matrix = WorkloadMatrix(2, 3)
    matrix.observe(0, 0, 5.0)
    matrix.observe(0, 1, 3.0)
    matrix.observe(1, 0, 7.0)
    matrix.observe_censored(1, 2, 4.0)
    assert matrix.workload_latency() == pytest.approx(3.0 + 7.0)
    assert matrix.exploration_time() == pytest.approx(5.0 + 3.0 + 7.0 + 4.0)


def test_unknown_entries_and_fractions():
    matrix = WorkloadMatrix(2, 2)
    matrix.observe(0, 0, 1.0)
    matrix.observe_censored(1, 1, 1.0)
    unknown = set(matrix.unknown_entries())
    assert unknown == {(0, 1), (1, 0)}
    assert matrix.unknown_in_row(0) == [1]
    assert matrix.observed_fraction() == pytest.approx(0.25)
    assert matrix.known_fraction() == pytest.approx(0.5)
    assert matrix.observed_count_in_row(0) == 1


def test_add_query_appends_unobserved_row():
    matrix = WorkloadMatrix(2, 3, query_names=["a", "b"])
    index = matrix.add_query("c")
    assert index == 2
    assert matrix.n_queries == 3
    assert matrix.query_names[-1] == "c"
    assert matrix.unknown_in_row(2) == [0, 1, 2]


def test_invalidate_resets_rows():
    matrix = WorkloadMatrix(2, 2)
    matrix.observe(0, 0, 1.0)
    matrix.observe(1, 0, 2.0)
    matrix.invalidate([0])
    assert not matrix.is_observed(0, 0)
    assert matrix.is_observed(1, 0)
    matrix.invalidate()
    assert matrix.known_fraction() == 0.0


def test_roundtrip_dict_and_file(tmp_path):
    matrix = WorkloadMatrix(2, 3, query_names=["a", "b"])
    matrix.observe(0, 0, 1.5)
    matrix.observe_censored(1, 2, 0.5)
    clone = WorkloadMatrix.from_dict(matrix.to_dict())
    assert clone.value(0, 0) == 1.5
    assert clone.is_censored(1, 2)

    path = tmp_path / "matrix.npz"
    matrix.save(str(path))
    loaded = WorkloadMatrix.load(str(path))
    assert loaded.query_names == ["a", "b"]
    assert loaded.value(0, 0) == 1.5
    assert loaded.is_censored(1, 2)
    assert np.allclose(loaded.mask, matrix.mask)


def test_copy_is_independent():
    matrix = WorkloadMatrix(1, 2)
    matrix.observe(0, 0, 1.0)
    clone = matrix.copy()
    clone.observe(0, 1, 2.0)
    assert not matrix.is_observed(0, 1)
