"""Tests for workload specs, synthetic matrices, shifts, and persistence."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.loader import load_workload, save_workload
from repro.workloads.matrices import generate_workload
from repro.workloads.shift import (
    DataDriftModel,
    add_etl_query,
    apply_data_shift,
    changed_optimal_fraction,
    split_for_workload_shift,
)
from repro.workloads.spec import (
    CEB_SPEC,
    DSB_SPEC,
    JOB_SPEC,
    STACK_SPEC,
    WorkloadSpec,
    all_specs,
    get_spec,
)


# -- specs -------------------------------------------------------------------
def test_paper_specs_match_table1():
    assert JOB_SPEC.n_queries == 113
    assert CEB_SPEC.n_queries == 3133
    assert STACK_SPEC.n_queries == 6191
    assert DSB_SPEC.n_queries == 1040
    assert JOB_SPEC.default_total == pytest.approx(181.0)
    assert JOB_SPEC.optimal_total == pytest.approx(68.0)
    assert CEB_SPEC.headroom == pytest.approx(2.94 / 1.02, rel=1e-3)
    assert all(spec.n_hints == 49 for spec in all_specs())


def test_get_spec_lookup_and_errors():
    assert get_spec("job") is JOB_SPEC
    with pytest.raises(WorkloadError):
        get_spec("tpch")


def test_spec_validation():
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="bad", n_queries=0, default_total=10, optimal_total=5)
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="bad", n_queries=5, default_total=5, optimal_total=10)


def test_spec_scaling_preserves_headroom():
    scaled = CEB_SPEC.scaled(0.1)
    assert scaled.n_queries == pytest.approx(313, abs=1)
    assert scaled.headroom == pytest.approx(CEB_SPEC.headroom, rel=1e-6)
    with pytest.raises(WorkloadError):
        CEB_SPEC.scaled(0.0)


# -- synthetic workloads -------------------------------------------------------
def test_generated_workload_is_calibrated(tiny_spec, tiny_workload):
    assert tiny_workload.true_latencies.shape == (tiny_spec.n_queries, tiny_spec.n_hints)
    assert tiny_workload.default_total == pytest.approx(tiny_spec.default_total, rel=0.01)
    assert tiny_workload.optimal_total == pytest.approx(tiny_spec.optimal_total, rel=0.05)
    assert (tiny_workload.true_latencies > 0).all()
    assert np.isfinite(tiny_workload.true_latencies).all()


def test_generated_workload_is_reproducible(tiny_spec):
    a = generate_workload(tiny_spec, seed=5)
    b = generate_workload(tiny_spec, seed=5)
    c = generate_workload(tiny_spec, seed=6)
    assert np.allclose(a.true_latencies, b.true_latencies)
    assert not np.allclose(a.true_latencies, c.true_latencies)


def test_workload_matrix_is_approximately_low_rank(job_small_workload):
    singular = np.linalg.svd(job_small_workload.true_latencies, compute_uv=False)
    energy = np.cumsum(singular ** 2) / np.sum(singular ** 2)
    # The top ~10 singular values capture nearly all of the energy (Figure 14).
    assert energy[9] > 0.95


def test_some_queries_are_incompressible(tiny_workload):
    optimal = tiny_workload.optimal_hints()
    assert (optimal == 0).any()
    assert (optimal != 0).any()


def test_optimizer_costs_correlate_with_latency(tiny_workload):
    corr = np.corrcoef(
        np.log(tiny_workload.optimizer_costs.ravel()),
        np.log(tiny_workload.true_latencies.ravel()),
    )[0, 1]
    assert corr > 0.5


def test_workload_subset(tiny_workload):
    subset = tiny_workload.subset([0, 2, 4])
    assert subset.n_queries == 3
    assert np.allclose(subset.true_latencies, tiny_workload.true_latencies[[0, 2, 4]])
    assert subset.default_total == pytest.approx(
        tiny_workload.true_latencies[[0, 2, 4], 0].sum()
    )


def test_generate_workload_validation(tiny_spec):
    with pytest.raises(WorkloadError):
        generate_workload(tiny_spec, incompressible_fraction=1.5)


# -- shifts ---------------------------------------------------------------------
def test_add_etl_query_appends_incompressible_row(tiny_workload):
    etl_latency = 0.2 * tiny_workload.default_total
    shifted = add_etl_query(tiny_workload, latency=etl_latency, seed=0)
    assert shifted.n_queries == tiny_workload.n_queries + 1
    row = shifted.true_latencies[-1]
    assert row[0] == pytest.approx(row.min())
    assert row.max() / row.min() < 1.1
    assert shifted.default_total > tiny_workload.default_total
    with pytest.raises(WorkloadError):
        add_etl_query(tiny_workload, latency=-1.0)


def test_split_for_workload_shift(tiny_workload):
    initial, late = split_for_workload_shift(tiny_workload, 0.7, seed=0)
    assert len(initial) + len(late) == tiny_workload.n_queries
    assert len(set(initial) & set(late)) == 0
    assert len(initial) == round(0.7 * tiny_workload.n_queries)
    with pytest.raises(WorkloadError):
        split_for_workload_shift(tiny_workload, 1.5)


def test_data_drift_model_is_monotone():
    model = DataDriftModel()
    fractions = [model.drift_fraction(i) for i in model.intervals()]
    assert fractions == sorted(fractions)
    assert model.drift_fraction("2 years") == pytest.approx(0.21)
    with pytest.raises(WorkloadError):
        model.drift_fraction("3 years")


def test_apply_data_shift_changes_requested_fraction(tiny_workload):
    shifted = apply_data_shift(tiny_workload, changed_fraction=0.3, growth_factor=1.2, seed=0)
    assert shifted.n_queries == tiny_workload.n_queries
    changed = changed_optimal_fraction(tiny_workload, shifted)
    assert changed == pytest.approx(0.3, abs=0.1)
    # Latencies grow roughly by the growth factor on unchanged cells.
    assert shifted.default_total >= tiny_workload.default_total
    with pytest.raises(WorkloadError):
        apply_data_shift(tiny_workload, changed_fraction=2.0)


def test_changed_optimal_fraction_requires_same_size(tiny_workload):
    subset = tiny_workload.subset(range(5))
    with pytest.raises(WorkloadError):
        changed_optimal_fraction(tiny_workload, subset)


# -- persistence -------------------------------------------------------------------
def test_save_and_load_roundtrip(tmp_path, tiny_workload):
    path = tmp_path / "workload.npz"
    save_workload(tiny_workload, path)
    loaded = load_workload(path)
    assert loaded.spec.name == tiny_workload.spec.name
    assert np.allclose(loaded.true_latencies, tiny_workload.true_latencies)
    assert np.allclose(loaded.query_factors, tiny_workload.query_factors)
    assert loaded.seed == tiny_workload.seed


def test_load_missing_file(tmp_path):
    with pytest.raises(WorkloadError):
        load_workload(tmp_path / "missing.npz")
